"""Predicate analysis: normalising filters into per-field interval constraints.

This is the layer the query planner and the shard router share.  A
MongoDB-style filter is decomposed into *interval sets* per field path:

* ``{"a": 5}`` / ``{"a": {"$eq": 5}}``  -> the point interval ``[5, 5]``,
* ``{"a": {"$in": [1, 2]}}``            -> a union of point intervals,
* ``{"a": {"$gte": 1, "$lt": 9}}``      -> the half-open interval ``[1, 9)``,
* ``{"$and": [...]}``                   -> the per-field intersection of the
  sub-queries' constraints.

The result deliberately **over-approximates**: every document matching the
query has its field value inside the field's interval set, but not every
value inside the set matches (operators such as ``$ne``/``$nin``/``$not``
contribute no constraint).  Callers therefore always re-check candidates
with :func:`repro.docstore.matching.matches`; the analysis only narrows
*where to look* -- which index entries to scan, which shards to contact.

Constraints that would also match documents *missing* the field (equality
with ``None``) are reported as unanalyzable (the field is absent from the
result): indexes and shard routing only ever see documents that carry the
field, so using them for such predicates would silently drop matches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

from repro.docstore.matching import is_operator_expression

# Type ranks giving mixed-type values a total order (mirrors the comparability
# rules of matching._comparable: bools only compare with bools, numbers with
# numbers, strings with strings).  Rank 0 is None; non-scalars have no rank.
_RANK_NONE = 0
_RANK_BOOL = 1
_RANK_NUMBER = 2
_RANK_STRING = 3


def scalar_rank(value: Any) -> int | None:
    """The ordering rank of ``value``, or None for non-orderable values."""
    if value is None:
        return _RANK_NONE
    if isinstance(value, bool):
        return _RANK_BOOL
    if isinstance(value, (int, float)):
        return _RANK_NUMBER
    if isinstance(value, str):
        return _RANK_STRING
    return None


def ordered_key(value: Any) -> tuple:
    """A composite sort key ``(rank, value)`` usable as an ordered-index key.

    Only call for values with a rank (``scalar_rank(value) is not None``).
    """
    return (scalar_rank(value), value)


@dataclass(frozen=True)
class Interval:
    """One contiguous interval of field values.

    ``None`` bounds mean unbounded on that side; the default instance is the
    full interval.  A point is ``Interval.point(v)``.  Because ``None`` is
    the "unbounded" marker, ``None`` is never a legal bound *value* --
    equality-with-None predicates are unanalyzable (see module docstring).
    """

    low: Any = None
    high: Any = None
    low_inclusive: bool = False
    high_inclusive: bool = False

    @classmethod
    def point(cls, value: Any) -> "Interval":
        return cls(value, value, True, True)

    @classmethod
    def make(cls, low: Any, high: Any, low_inclusive: bool,
             high_inclusive: bool) -> "Interval | None":
        """Build an interval, returning None when it is provably empty."""
        if low is not None and high is not None:
            low_rank, high_rank = scalar_rank(low), scalar_rank(high)
            if (low_rank is None or high_rank is None or low_rank != high_rank):
                # Bounds that are not order-comparable (arrays, sub-documents,
                # mixed types) can only survive as an equality point, which
                # still over-approximates pairs like [True, 1].
                try:
                    equal = bool(low == high)
                except TypeError:
                    equal = False
                if equal and low_inclusive and high_inclusive:
                    return cls(low, high, True, True)
                return None
            try:
                if low > high:
                    return None
                if low == high and not (low_inclusive and high_inclusive):
                    return None
            except TypeError:
                return None
        return cls(low, high, low_inclusive, high_inclusive)

    @property
    def is_full(self) -> bool:
        return self.low is None and self.high is None

    @property
    def is_point(self) -> bool:
        return (self.low is not None and self.low_inclusive
                and self.high_inclusive and self.low == self.high)

    @property
    def rank(self) -> int | None:
        """The type rank of this interval's bounds (None for the full interval
        or bounds that are not orderable scalars)."""
        bound = self.low if self.low is not None else self.high
        if bound is None:
            return None
        return scalar_rank(bound)

    def contains(self, value: Any) -> bool:
        """True when ``value`` lies inside the interval (False on type clash)."""
        try:
            if self.low is not None:
                if value < self.low:
                    return False
                if value == self.low and not self.low_inclusive:
                    return False
            if self.high is not None:
                if value > self.high:
                    return False
                if value == self.high and not self.high_inclusive:
                    return False
        except TypeError:
            return False
        return True

    def intersect(self, other: "Interval") -> "Interval | None":
        """The intersection, or None when it is empty."""
        try:
            low, low_inclusive = _tighter_low(
                (self.low, self.low_inclusive), (other.low, other.low_inclusive))
            high, high_inclusive = _tighter_high(
                (self.high, self.high_inclusive), (other.high, other.high_inclusive))
        except TypeError:
            return None  # incomparable bound types: no value satisfies both
        return Interval.make(low, high, low_inclusive, high_inclusive)

    def describe(self) -> str:
        left = "[" if self.low_inclusive else "("
        right = "]" if self.high_inclusive else ")"
        low = "-inf" if self.low is None else repr(self.low)
        high = "+inf" if self.high is None else repr(self.high)
        return f"{left}{low}, {high}{right}"


def _tighter_low(first: tuple[Any, bool], second: tuple[Any, bool]) -> tuple[Any, bool]:
    (a, a_inclusive), (b, b_inclusive) = first, second
    if a is None:
        return b, b_inclusive
    if b is None:
        return a, a_inclusive
    if a == b:
        return a, a_inclusive and b_inclusive  # exclusive is the tighter bound
    return (a, a_inclusive) if a > b else (b, b_inclusive)


def _tighter_high(first: tuple[Any, bool], second: tuple[Any, bool]) -> tuple[Any, bool]:
    (a, a_inclusive), (b, b_inclusive) = first, second
    if a is None:
        return b, b_inclusive
    if b is None:
        return a, a_inclusive
    if a == b:
        return a, a_inclusive and b_inclusive
    return (a, a_inclusive) if a < b else (b, b_inclusive)


@dataclass(frozen=True)
class IntervalSet:
    """A union of intervals constraining one field (empty tuple = unsatisfiable)."""

    intervals: tuple[Interval, ...]

    @classmethod
    def full(cls) -> "IntervalSet":
        return cls((Interval(),))

    @classmethod
    def empty(cls) -> "IntervalSet":
        return cls(())

    @classmethod
    def points(cls, values: list[Any]) -> "IntervalSet":
        return cls(tuple(Interval.point(value) for value in values))

    @property
    def is_empty(self) -> bool:
        return not self.intervals

    @property
    def is_full(self) -> bool:
        return any(interval.is_full for interval in self.intervals)

    def point_values(self) -> list[Any] | None:
        """The values when every interval is a point, else None."""
        if self.is_empty:
            return []
        if all(interval.is_point for interval in self.intervals):
            return [interval.low for interval in self.intervals]
        return None

    def contains(self, value: Any) -> bool:
        return any(interval.contains(value) for interval in self.intervals)

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        pieces = []
        for mine in self.intervals:
            for theirs in other.intervals:
                combined = mine.intersect(theirs)
                if combined is not None:
                    pieces.append(combined)
        return IntervalSet(tuple(pieces))

    def conjoin(self, other: "IntervalSet") -> "IntervalSet":
        """A sound constraint for the *conjunction* of two predicates.

        Intersecting two point-style sets is unsound for array (multikey)
        values: ``{"a": [1, 5]}`` satisfies both ``{"a": 1}`` and
        ``{"a": 5}`` through different elements, yet ``{1} ∩ {5}`` is empty.
        For that shape keep the smaller operand unchanged -- each operand
        alone over-approximates the conjunction, and multikey hash lookups
        are exact for point constraints.  Every other combination involves a
        range, which no array value can match, so true interval intersection
        is sound there.
        """
        if self.is_empty or other.is_empty:
            return IntervalSet.empty()
        if (self.point_values() is not None and not self.is_full
                and other.point_values() is not None and not other.is_full):
            return self if len(self.intervals) <= len(other.intervals) else other
        return self.intersect(other)

    def __iter__(self) -> Iterator[Interval]:
        return iter(self.intervals)

    def describe(self) -> list[str]:
        return [interval.describe() for interval in self.intervals]


def query_intervals(query: dict[str, Any]) -> dict[str, IntervalSet]:
    """Per-field interval constraints implied by a conjunctive query.

    Only top-level field predicates and ``$and`` branches contribute
    (``$or``/``$nor`` cannot narrow a single field conjunctively).  Fields
    whose predicates cannot be represented as intervals are absent from the
    result; an *empty* interval set means the query provably matches nothing.
    """
    constraints: dict[str, IntervalSet] = {}
    for key, condition in query.items():
        if key == "$and":
            if not isinstance(condition, list):
                continue  # matching() rejects this shape at execution time
            for sub_query in condition:
                if not isinstance(sub_query, dict):
                    continue
                for field_path, interval_set in query_intervals(sub_query).items():
                    _merge(constraints, field_path, interval_set)
        elif key.startswith("$"):
            continue
        else:
            interval_set = condition_intervals(condition)
            if interval_set is not None:
                _merge(constraints, key, interval_set)
    return constraints


def condition_intervals(condition: Any) -> IntervalSet | None:
    """The interval set of one field condition, or None when unanalyzable."""
    if is_operator_expression(condition):
        result = IntervalSet.full()
        constrained = False
        for operator, operand in condition.items():
            piece = _operator_intervals(operator, operand)
            if piece is None:
                continue  # operator contributes no representable constraint
            constrained = True
            result = result.conjoin(piece)
            if result.is_empty:
                return result
        return result if constrained else None
    if condition is None:
        return None  # {"a": None} also matches documents missing "a"
    return IntervalSet((Interval.point(condition),))


def _operator_intervals(operator: str, operand: Any) -> IntervalSet | None:
    if operator == "$eq":
        if operand is None:
            return None
        return IntervalSet((Interval.point(operand),))
    if operator == "$in":
        if not isinstance(operand, (list, tuple)):
            return None
        if any(value is None for value in operand):
            return None  # $in [None, ...] also matches missing fields
        return IntervalSet.points(list(operand))
    if operator in ("$gt", "$gte", "$lt", "$lte"):
        if scalar_rank(operand) in (None, _RANK_NONE):
            # No stored value is order-comparable with None/lists/dicts, so
            # the predicate is unsatisfiable (mirrors matching._comparable).
            return IntervalSet.empty()
        if operator == "$gt":
            return IntervalSet((Interval(low=operand),))
        if operator == "$gte":
            return IntervalSet((Interval(low=operand, low_inclusive=True),))
        if operator == "$lt":
            return IntervalSet((Interval(high=operand),))
        return IntervalSet((Interval(high=operand, high_inclusive=True),))
    return None  # $ne / $nin / $exists / $size / $all / $not


def _merge(constraints: dict[str, IntervalSet], field_path: str,
           interval_set: IntervalSet) -> None:
    existing = constraints.get(field_path)
    constraints[field_path] = (interval_set if existing is None
                               else existing.conjoin(interval_set))
