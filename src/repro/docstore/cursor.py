"""Cursors: lazy result sets with sort, skip, limit and projection."""

from __future__ import annotations

from typing import Any, Callable, Iterator


class Cursor:
    """Iterates over query results, applying sort / skip / limit / projection.

    The cursor is lazy with respect to the caller but materialises the
    matching documents on first use (sorting requires it anyway for the query
    shapes the benchmarks issue).
    """

    def __init__(
        self,
        fetch: Callable[[], list[dict[str, Any]]],
        projection: dict[str, int] | None = None,
    ):
        self._fetch = fetch
        self._projection = projection
        self._sort_spec: list[tuple[str, int]] = []
        self._skip = 0
        self._limit: int | None = None
        self._materialised: list[dict[str, Any]] | None = None

    # -- fluent modifiers ------------------------------------------------------

    def sort(self, field: str, direction: int = 1) -> "Cursor":
        """Sort by ``field`` ascending (1) or descending (-1)."""
        self._assert_not_started()
        self._sort_spec.append((field, direction))
        return self

    def skip(self, count: int) -> "Cursor":
        """Skip the first ``count`` results."""
        self._assert_not_started()
        self._skip = max(0, count)
        return self

    def limit(self, count: int) -> "Cursor":
        """Return at most ``count`` results."""
        self._assert_not_started()
        self._limit = max(0, count)
        return self

    # -- consumption --------------------------------------------------------------

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self._results())

    def __len__(self) -> int:
        return len(self._results())

    def to_list(self) -> list[dict[str, Any]]:
        """Return all results as a list."""
        return list(self._results())

    def first(self) -> dict[str, Any] | None:
        """Return the first result or ``None``."""
        results = self._results()
        return results[0] if results else None

    # -- internals ------------------------------------------------------------------

    def _results(self) -> list[dict[str, Any]]:
        if self._materialised is None:
            documents = self._fetch()
            for field, direction in reversed(self._sort_spec):
                documents.sort(
                    key=lambda doc: _sort_key(doc.get(field)),
                    reverse=direction < 0,
                )
            if self._skip:
                documents = documents[self._skip:]
            if self._limit is not None:
                documents = documents[: self._limit]
            if self._projection:
                documents = [self._project(doc) for doc in documents]
            self._materialised = documents
        return self._materialised

    def _project(self, document: dict[str, Any]) -> dict[str, Any]:
        include = {field for field, flag in self._projection.items() if flag}
        exclude = {field for field, flag in self._projection.items() if not flag}
        if include:
            projected = {field: document[field] for field in include if field in document}
            if "_id" not in exclude and "_id" in document:
                projected["_id"] = document["_id"]
            return projected
        return {key: value for key, value in document.items() if key not in exclude}

    def _assert_not_started(self) -> None:
        if self._materialised is not None:
            raise RuntimeError("cursor has already been consumed")


def _sort_key(value: Any) -> tuple:
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (2, value)
    if isinstance(value, str):
        return (3, value)
    return (4, str(value))
