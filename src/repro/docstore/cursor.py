"""Cursors: lazy result sets with sort, skip, limit and projection."""

from __future__ import annotations

from typing import Any, Callable, Iterator

from repro.docstore.documents import clone_document
from repro.docstore.predicates import scalar_rank


class Cursor:
    """Iterates over query results, applying sort / skip / limit / projection.

    The cursor is lazy with respect to the caller but materialises the
    matching documents on first use (sorting requires it anyway for the query
    shapes the benchmarks issue).  ``fetch`` takes an optional limit: when no
    sort is requested, the effective limit (``skip + limit``) is pushed down
    into it so the query planner can stop a scan early.

    ``ordered_fetch`` (optional) is the sorted counterpart: a callable
    ``(sort_spec, limit) -> documents`` returning documents *already* in the
    requested order -- typically backed by the aggregation pipeline, whose
    ``$sort``/``$limit`` rides an ordered index walk when one covers the
    sort field.  When a sort is requested and the hook is present, the
    cursor delegates ordering (and the effective ``skip + limit``) to it and
    skips its own in-memory sort.

    The cursor is part of the client surface of the copy-on-write document
    protocol: ``fetch`` returns the stored objects themselves, and the cursor
    materialises the single defensive copy per emitted document -- after
    skip/limit cut the result down, so documents that are never returned are
    never copied.
    """

    def __init__(
        self,
        fetch: Callable[..., list[dict[str, Any]]],
        projection: dict[str, int] | None = None,
        ordered_fetch: Callable[[list[tuple[str, int]], int | None],
                                list[dict[str, Any]]] | None = None,
        observer: Callable[[int], None] | None = None,
    ):
        self._fetch = fetch
        self._projection = projection
        self._ordered_fetch = ordered_fetch
        # Optional hook fired exactly once, on materialisation, with the
        # number of documents the cursor actually emitted (after sort, skip,
        # limit and projection) -- the observability layer's view of what
        # the client really consumed, as opposed to what the query matched.
        self._observer = observer
        self._sort_spec: list[tuple[str, int]] = []
        self._skip = 0
        self._limit: int | None = None
        self._materialised: list[dict[str, Any]] | None = None

    # -- fluent modifiers ------------------------------------------------------

    def sort(self, field: str, direction: int = 1) -> "Cursor":
        """Sort by ``field`` ascending (1) or descending (-1)."""
        self._assert_not_started()
        self._sort_spec.append((field, direction))
        return self

    def skip(self, count: int) -> "Cursor":
        """Skip the first ``count`` results."""
        self._assert_not_started()
        self._skip = max(0, count)
        return self

    def limit(self, count: int) -> "Cursor":
        """Return at most ``count`` results."""
        self._assert_not_started()
        self._limit = max(0, count)
        return self

    # -- consumption --------------------------------------------------------------

    def __iter__(self) -> Iterator[dict[str, Any]]:
        return iter(self._results())

    def __len__(self) -> int:
        return len(self._results())

    def to_list(self) -> list[dict[str, Any]]:
        """Return all results as a list."""
        return list(self._results())

    def first(self) -> dict[str, Any] | None:
        """Return the first result or ``None``."""
        results = self._results()
        return results[0] if results else None

    # -- internals ------------------------------------------------------------------

    def _results(self) -> list[dict[str, Any]]:
        if self._materialised is None:
            if self._sort_spec and self._ordered_fetch is not None:
                fetch_limit = (None if self._limit is None
                               else self._skip + self._limit)
                documents = list(
                    self._ordered_fetch(list(self._sort_spec), fetch_limit))
            else:
                documents = self._fetch_documents()
                for field, direction in reversed(self._sort_spec):
                    documents.sort(
                        key=lambda doc: sort_key(doc.get(field)),
                        reverse=direction < 0,
                    )
            if self._skip:
                documents = documents[self._skip:]
            if self._limit is not None:
                documents = documents[: self._limit]
            if self._projection:
                # Projection builds fresh (shallow) dicts; cloning them deep
                # copies only the projected subset.
                documents = [clone_document(self._project(doc)) for doc in documents]
            else:
                documents = [clone_document(doc) for doc in documents]
            self._materialised = documents
            if self._observer is not None:
                self._observer(len(documents))
        return self._materialised

    def _fetch_documents(self) -> list[dict[str, Any]]:
        if self._limit is not None and not self._sort_spec:
            return self._fetch(self._skip + self._limit)
        return self._fetch()

    def _project(self, document: dict[str, Any]) -> dict[str, Any]:
        include = {field for field, flag in self._projection.items() if flag}
        exclude = {field for field, flag in self._projection.items() if not flag}
        if include:
            projected = {field: document[field] for field in include if field in document}
            if "_id" not in exclude and "_id" in document:
                projected["_id"] = document["_id"]
            return projected
        return {key: value for key, value in document.items() if key not in exclude}

    def _assert_not_started(self) -> None:
        if self._materialised is not None:
            raise RuntimeError("cursor has already been consumed")


def sort_key(value: Any) -> tuple:
    """Total-order sort key over mixed-type values (shared with the router).

    Built on the same type-rank ladder as
    :func:`repro.docstore.predicates.ordered_key` -- the router's limited
    multi-shard merge relies on the two orders agreeing with the ordered
    index's emission order.
    """
    rank = scalar_rank(value)
    if rank is None:
        return (4, str(value))
    if value is None:
        return (rank, "")
    if isinstance(value, bool):
        return (rank, int(value))
    return (rank, value)
