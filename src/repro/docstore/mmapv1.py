"""The mmapv1-like storage engine.

Mechanisms modelled:

* documents are appended to extents (contiguous regions doubling in size),
  each record is allocated with a *padding factor* so small growth can happen
  in place,
* no compression: the on-"disk" footprint is the padded document size, so the
  same logical data occupies considerably more space than under wiredTiger,
* reads rely on the OS page cache: while the padded data set fits in memory
  they are very cheap, beyond that a fraction of reads pays for page faults,
* updates that outgrow their padding move the document (extra cost), and
* concurrency control is at *collection* granularity, so concurrent writers
  serialise -- the main reason the engine stops scaling with client threads.

Hot-path properties: documents are stored by reference (the copy-on-write
protocol of :class:`~repro.docstore.engine_base.StorageEngine`), the total
extent footprint is a running counter (``storage_bytes`` and the per-read
page-fault estimate are O(1) instead of a sum over every extent), and
allocation keeps a *free-space hint* -- an upper bound on the free bytes in
any non-newest extent -- so the common append-only insert is O(1): the
first-fit scan only runs when the hint says an older extent might actually
fit the record, which preserves placement byte-for-byte with the scanning
implementation.

**Concurrency (PR 6).**  Reads are latch-free (a record lookup is a single
dict access and stored documents are frozen, so no torn state is
observable).  Mutations -- which do multi-step read-modify-writes on the
allocator, the running capacity total and the free-space hint -- take a
small internal latch (``_mutate``).  The collection layer already
serialises writes through its collection-exclusive lock, but the latch
keeps the engine correct under direct concurrent use too; like the
wiredTiger engine's latch it sits at the bottom of the lock hierarchy and
is released before service time is charged.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Iterator

from repro.docstore.cost import ConcurrencyProfile, CostParameters, kilobytes
from repro.docstore.engine_base import StorageEngine
from repro.docstore.locks import LockGranularity

DEFAULT_PADDING_FACTOR = 1.5
DEFAULT_MEMORY_BYTES = 256 * 1024 * 1024
_INITIAL_EXTENT_BYTES = 64 * 1024
_MAX_EXTENT_BYTES = 512 * 1024 * 1024


@dataclass
class _Record:
    """One stored record: the document plus its padded allocation."""

    document: dict[str, Any]
    allocated_bytes: int
    extent: int


class MmapV1Engine(StorageEngine):
    """Extent-based engine with padding, in-place updates and a collection lock."""

    name = "mmapv1"
    lock_granularity = LockGranularity.COLLECTION
    concurrency = ConcurrencyProfile(
        serial_write_fraction=0.95,
        serial_read_fraction=0.05,
        parallel_efficiency=0.85,
    )

    def __init__(
        self,
        parameters: CostParameters | None = None,
        padding_factor: float = DEFAULT_PADDING_FACTOR,
        memory_bytes: int = DEFAULT_MEMORY_BYTES,
    ):
        super().__init__(parameters)
        if padding_factor < 1.0:
            raise ValueError("padding_factor must be >= 1.0")
        self.padding_factor = padding_factor
        self.memory_bytes = memory_bytes
        self._records: dict[str, _Record] = {}
        self._extents: list[int] = []  # bytes used per extent
        self._extent_capacity: list[int] = []
        self._document_moves = 0
        # Running totals / hints replacing per-operation scans:
        # ``_capacity_total`` is ``sum(_extent_capacity)`` (storage_bytes);
        # ``_older_free_hint`` is an upper bound on the free bytes of any
        # extent *except the newest* -- when a record is larger than the
        # hint, first-fit provably lands in the newest extent (or a new one).
        self._capacity_total = 0
        self._older_free_hint = 0
        # Serialises allocator / running-total mutations; see module docstring.
        self._mutate = threading.Lock()

    # -- StorageEngine interface -------------------------------------------------

    def insert(self, record_id: str, document: dict[str, Any],
               size: int | None = None) -> float:
        with self._mutate:
            if record_id in self._records:
                raise KeyError(f"record {record_id!r} already exists")
            cost = self._insert_one(record_id, document, size)
        return self.costs.charge("insert", cost)

    def insert_batch(self, records: list[tuple[str, dict[str, Any], int]]) -> float:
        """Batched inserts: one cost accumulation for the whole round."""
        with self._mutate:
            for record_id, __, __size in records:
                if record_id in self._records:
                    raise KeyError(f"record {record_id!r} already exists")
            total = 0.0
            for record_id, document, size in records:
                total += self._insert_one(record_id, document, size)
        return self.costs.charge_many("insert", total, len(records))

    def _insert_one(self, record_id: str, document: dict[str, Any],
                    size: int | None) -> float:
        size = self._size_of(document, size)
        allocated = int(size * self.padding_factor)
        extent = self._allocate(allocated)
        self._records[record_id] = _Record(document, allocated, extent)
        return (
            self.parameters.base_operation
            + self.parameters.node_access  # namespace/extent bookkeeping
            + kilobytes(allocated) * self.parameters.disk_write_per_kb
        )

    def read(self, record_id: str) -> tuple[dict[str, Any] | None, float]:
        # Latch-free: a single dict lookup of a frozen document.
        record = self._records.get(record_id)
        cost = self.parameters.base_operation + self.parameters.node_access
        if record is None:
            return None, self.costs.charge("read_miss", cost)
        cost += self._page_fault_cost(record.allocated_bytes)
        return record.document, self.costs.charge("read", cost)

    def peek(self, record_id: str) -> dict[str, Any] | None:
        """Charge-free latch-free lookup."""
        record = self._records.get(record_id)
        return record.document if record is not None else None

    def update(self, record_id: str, document: dict[str, Any],
               size: int | None = None) -> float:
        new_size = self._size_of(document, size)
        cost = self.parameters.base_operation + self.parameters.node_access
        with self._mutate:
            record = self._records.get(record_id)
            if record is None:
                raise KeyError(record_id)
            if new_size <= record.allocated_bytes:
                # In-place update: only the touched bytes are flushed.
                record.document = document
                cost += kilobytes(new_size) * self.parameters.disk_write_per_kb
            else:
                # Document outgrew its padding: move it to a fresh allocation.
                allocated = int(new_size * self.padding_factor)
                extent = self._allocate(allocated)
                self._free(record.extent, record.allocated_bytes)
                self._records[record_id] = _Record(document, allocated, extent)
                self._document_moves += 1
                cost += (
                    self.parameters.document_move
                    + kilobytes(allocated) * self.parameters.disk_write_per_kb
                )
        cost += self._page_fault_cost(new_size)
        return self.costs.charge("update", cost)

    def delete(self, record_id: str) -> float:
        with self._mutate:
            record = self._records.pop(record_id, None)
            if record is None:
                raise KeyError(record_id)
            self._free(record.extent, record.allocated_bytes)
        cost = self.parameters.base_operation + self.parameters.node_access
        return self.costs.charge("delete", cost)

    def scan_cost_per_document(self) -> float:
        return self.parameters.node_access + self._page_fault_cost(1024) * 0.25

    def scan(self) -> Iterator[tuple[str, dict[str, Any], float]]:
        per_document = self.scan_cost_per_document()
        for record_id, record in list(self._records.items()):
            cost = self.costs.charge("scan", per_document)
            yield record_id, record.document, cost

    def scan_uncharged(self) -> Iterator[tuple[str, dict[str, Any]]]:
        for record_id, record in list(self._records.items()):
            yield record_id, record.document

    def count(self) -> int:
        return len(self._records)

    def storage_bytes(self) -> int:
        return self._capacity_total

    def verify_accounting(self) -> None:
        """Check the running totals and free-space hint against recomputations.

        A lost read-modify-write on ``_capacity_total`` or a hint that drifted
        *below* some older extent's free space (which would silently break
        first-fit placement) shows up here; the concurrency stress suite calls
        this after multi-threaded insert/update/delete mixes.
        """
        with self._mutate:
            assert self._capacity_total == sum(self._extent_capacity), (
                f"capacity drift: running total {self._capacity_total} != "
                f"extent sum {sum(self._extent_capacity)}"
            )
            used_by_extent = [0] * len(self._extents)
            for record in self._records.values():
                used_by_extent[record.extent] += record.allocated_bytes
            assert used_by_extent == self._extents, (
                "per-extent usage drift between records and extent counters"
            )
            for index in range(len(self._extents) - 1):
                free = self._extent_capacity[index] - self._extents[index]
                assert free <= self._older_free_hint, (
                    f"free-space hint {self._older_free_hint} below extent "
                    f"{index}'s free bytes {free} (breaks first-fit)"
                )

    # -- engine-specific reporting --------------------------------------------------

    def statistics(self) -> dict[str, Any]:
        stats = super().statistics()
        stats["padding_factor"] = self.padding_factor
        stats["document_moves"] = self._document_moves
        stats["extents"] = len(self._extent_capacity)
        stats["allocated_bytes"] = sum(
            record.allocated_bytes for record in self._records.values()
        )
        return stats

    # -- internals ---------------------------------------------------------------------

    def _allocate(self, size: int) -> int:
        """Place ``size`` bytes into an extent, growing the file if needed.

        Placement is first-fit over the extents in order.  The free-space
        hint makes the common case O(1): when ``size`` exceeds the free bytes
        of every non-newest extent (hint is an upper bound), the first fit
        can only be the newest extent, so the scan is skipped entirely.
        """
        last = len(self._extents) - 1
        if size > self._older_free_hint:
            if last >= 0 and self._extents[last] + size <= self._extent_capacity[last]:
                self._extents[last] += size
                return last
            return self._append_extent(size)
        for index in range(last + 1):
            if self._extents[index] + size <= self._extent_capacity[index]:
                self._extents[index] += size
                return index
        # Nothing fit anywhere, so every extent's free space is below ``size``
        # -- tighten the hint so future records this large skip the scan.
        if self._older_free_hint >= size:
            self._older_free_hint = max(0, size - 1)
        return self._append_extent(size)

    def _append_extent(self, size: int) -> int:
        """Open a new (doubled) extent; the retired extent's slack joins the
        older-extent free-space hint."""
        last = len(self._extent_capacity) - 1
        if last >= 0:
            retired_free = self._extent_capacity[last] - self._extents[last]
            if retired_free > self._older_free_hint:
                self._older_free_hint = retired_free
            next_capacity = self._extent_capacity[last] * 2
        else:
            next_capacity = _INITIAL_EXTENT_BYTES
        next_capacity = min(max(next_capacity, size), max(_MAX_EXTENT_BYTES, size))
        self._extent_capacity.append(next_capacity)
        self._extents.append(size)
        self._capacity_total += next_capacity
        return len(self._extents) - 1

    def _free(self, extent: int, size: int) -> None:
        if 0 <= extent < len(self._extents):
            self._extents[extent] = max(0, self._extents[extent] - size)
            if extent < len(self._extents) - 1:
                free = self._extent_capacity[extent] - self._extents[extent]
                if free > self._older_free_hint:
                    self._older_free_hint = free

    def _page_fault_cost(self, touched_bytes: int) -> float:
        """Extra read cost once the padded data set exceeds available memory."""
        resident_fraction = min(
            1.0, self.memory_bytes / max(self._capacity_total, 1)
        )
        fault_probability = 1.0 - resident_fraction
        return fault_probability * kilobytes(touched_bytes) * self.parameters.disk_read_per_kb
