"""Operation profiler, slow-op log, and unified metrics registry.

This module is the observability substrate for the whole stack (PR 8):

* :class:`MetricsRegistry` -- thread-safe counters, gauges, and fixed-bucket
  latency histograms with interpolated p50/p95/p99.  Every
  :class:`~repro.docstore.server.DocumentServer` owns one; replica sets and
  sharded clusters aggregate their members' registries with
  :meth:`MetricsRegistry.merge`.
* :class:`Profiler` / :class:`ProfiledOp` -- every collection and router
  operation runs inside a span capturing the op type, namespace, query
  shape, winning access path, plan-cache state, docs examined vs returned,
  per-thread lock wait, per-shard child spans, and both the simulated and
  wall-clock duration.  Completed spans whose *simulated* duration exceeds
  ``slow_ms`` land in a bounded ring buffer (the ``system.profile`` analog).
* :class:`MetricsSampler` -- an FTDC-style periodic snapshotter that the
  workload runner pumps between operations into a bounded in-memory series.

Profiling levels mirror MongoDB's profiler:

====== =========================================================
level  behaviour
====== =========================================================
0      off -- operations pay only a single ``profiler.enabled``
       branch check (the default; keeps the E13/E14/E15 floors)
1      metrics + spans recorded; only ops slower than ``slow_ms``
       (simulated milliseconds) enter the slow-op log
2      metrics + spans recorded; every op enters the slow-op log
       (``slow_ms`` still stored on each entry for reference)
====== =========================================================

Slowness is judged on the *simulated* duration because simulated seconds
are the repo's canonical, deterministic latency axis; the wall-clock
duration is captured on every span as supporting evidence.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from collections import deque
from typing import Any, Callable, Iterator

from repro.errors import ValidationError

PROFILE_OFF = 0
PROFILE_SLOW_ONLY = 1
PROFILE_ALL = 2

_PROFILE_LEVELS = (PROFILE_OFF, PROFILE_SLOW_ONLY, PROFILE_ALL)

#: Geometric histogram bucket upper bounds, in milliseconds.  The range spans
#: sub-microsecond simulated point reads up to one-second stalls; the final
#: implicit bucket is +inf.
HISTOGRAM_BUCKETS_MS: tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0,
)


class LatencyHistogram:
    """Fixed-bucket latency histogram (milliseconds) with percentile estimates.

    Not thread-safe on its own; the owning :class:`MetricsRegistry` guards
    all access with its lock.
    """

    __slots__ = ("counts", "count", "sum_ms", "min_ms", "max_ms")

    def __init__(self) -> None:
        self.counts = [0] * (len(HISTOGRAM_BUCKETS_MS) + 1)
        self.count = 0
        self.sum_ms = 0.0
        self.min_ms = float("inf")
        self.max_ms = 0.0

    def observe(self, value_ms: float) -> None:
        index = 0
        for bound in HISTOGRAM_BUCKETS_MS:
            if value_ms <= bound:
                break
            index += 1
        self.counts[index] += 1
        self.count += 1
        self.sum_ms += value_ms
        if value_ms < self.min_ms:
            self.min_ms = value_ms
        if value_ms > self.max_ms:
            self.max_ms = value_ms

    def percentile(self, rank: float) -> float:
        """Estimate the ``rank``-th percentile from the bucket counts.

        Uses linear interpolation inside the bucket containing the target
        observation; the overflow bucket reports the recorded maximum.
        """
        if not self.count:
            return 0.0
        target = rank / 100.0 * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            previous = cumulative
            cumulative += bucket_count
            if cumulative >= target:
                if index >= len(HISTOGRAM_BUCKETS_MS):
                    return self.max_ms
                upper = HISTOGRAM_BUCKETS_MS[index]
                lower = HISTOGRAM_BUCKETS_MS[index - 1] if index else 0.0
                fraction = (target - previous) / bucket_count
                return lower + (upper - lower) * min(1.0, max(0.0, fraction))
        return self.max_ms

    def snapshot(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum_ms": self.sum_ms,
            "min_ms": 0.0 if self.count == 0 else self.min_ms,
            "max_ms": self.max_ms,
            "p50_ms": self.percentile(50.0),
            "p95_ms": self.percentile(95.0),
            "p99_ms": self.percentile(99.0),
            "buckets": list(self.counts),
        }

    @classmethod
    def from_buckets(cls, snapshots: list[dict[str, Any]]) -> "LatencyHistogram":
        """Rebuild a histogram by summing bucket counts from snapshots."""
        merged = cls()
        for snap in snapshots:
            buckets = snap.get("buckets") or []
            for index, bucket_count in enumerate(buckets):
                if index < len(merged.counts):
                    merged.counts[index] += bucket_count
            merged.count += snap.get("count", 0)
            merged.sum_ms += snap.get("sum_ms", 0.0)
            if snap.get("count", 0):
                merged.min_ms = min(merged.min_ms, snap.get("min_ms", 0.0))
                merged.max_ms = max(merged.max_ms, snap.get("max_ms", 0.0))
        return merged


class MetricsRegistry:
    """Thread-safe named counters, gauges, and latency histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, LatencyHistogram] = {}

    def increment(self, name: str, value: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value_ms: float) -> None:
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = LatencyHistogram()
            histogram.observe(value_ms)

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def snapshot(self) -> dict[str, Any]:
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: histogram.snapshot()
                    for name, histogram in sorted(self._histograms.items())
                },
            }

    @staticmethod
    def merge(snapshots: list[dict[str, Any]]) -> dict[str, Any]:
        """Combine registry snapshots: counters and histogram buckets sum,
        percentiles are recomputed from the merged buckets, gauges keep the
        last writer (and are suffixed by source when callers care)."""
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histogram_parts: dict[str, list[dict[str, Any]]] = {}
        for snap in snapshots:
            for name, value in snap.get("counters", {}).items():
                counters[name] = counters.get(name, 0) + value
            gauges.update(snap.get("gauges", {}))
            for name, hist in snap.get("histograms", {}).items():
                histogram_parts.setdefault(name, []).append(hist)
        histograms = {
            name: LatencyHistogram.from_buckets(parts).snapshot()
            for name, parts in sorted(histogram_parts.items())
        }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}


class ProfiledOp:
    """One profiled operation span.

    Mutable while in flight; :meth:`as_dict` renders the immutable record
    that enters the slow-op log.  Times are kept in two axes: simulated
    milliseconds (``simulated_ms``, the deterministic cost-model duration)
    and wall-clock milliseconds (``duration_ms``).
    """

    __slots__ = (
        "op", "namespace", "shape", "opid", "thread", "started",
        "duration_ms", "simulated_ms", "access_path", "plan_cache",
        "docs_examined", "docs_returned", "matched", "modified", "deleted",
        "inserted", "lock_wait_ms", "children", "parallel", "straggler",
        "targeting", "errored", "source",
    )

    def __init__(self, op: str, namespace: str, shape: str | None,
                 opid: int, thread: str) -> None:
        self.op = op
        self.namespace = namespace
        self.shape = shape
        self.opid = opid
        self.thread = thread
        self.started = time.perf_counter()
        self.duration_ms = 0.0
        self.simulated_ms = 0.0
        self.access_path: str | None = None
        self.plan_cache: str | None = None
        self.docs_examined = 0
        self.docs_returned = 0
        self.matched = 0
        self.modified = 0
        self.deleted = 0
        self.inserted = 0
        self.lock_wait_ms = 0.0
        self.children: list[dict[str, Any]] = []
        self.parallel = False
        self.straggler: str | None = None
        self.targeting: str | None = None
        self.errored: str | None = None
        self.source: str | None = None

    # -- in-flight mutation ----------------------------------------------------

    def note_plan(self, access_path: str, cache_state: str | None = None) -> None:
        self.access_path = access_path
        if cache_state is not None:
            self.plan_cache = cache_state

    def note_result(self, result: Any) -> None:
        """Absorb an OperationResult-shaped object's counters."""
        self.simulated_ms = result.simulated_seconds * 1000.0
        self.matched = result.matched_count
        self.modified = result.modified_count
        self.deleted = result.deleted_count
        if result.inserted_ids:
            self.inserted = len(result.inserted_ids)
        if result.documents is not None:
            self.docs_returned = len(result.documents)

    def note_simulated(self, seconds: float) -> None:
        self.simulated_ms = seconds * 1000.0

    def add_child(self, name: str, simulated_seconds: float,
                  **extra: Any) -> None:
        child = {"shard": name, "simulated_ms": simulated_seconds * 1000.0}
        child.update(extra)
        self.children.append(child)

    def add_shard_children(self, shard_costs: dict[str, float],
                           parallel: bool,
                           wall_seconds: dict[str, float] | None = None) -> None:
        """Synthesise per-shard child spans from an OperationResult's
        ``shard_costs`` breakdown.  ``parallel`` records whether the parent
        duration combines children by max (fan-out) or sum (serial).

        ``wall_seconds`` carries the *measured* per-shard wall-clock of a
        real fan-out dispatch (``OperationResult.shard_wall_seconds``);
        when present each child also reports ``wall_ms``, and the straggler
        is the shard with the largest measured wall-clock.  Without
        measurements (single-shard ops, synthetic spans) the straggler
        falls back to the largest simulated cost, which keeps it
        deterministic for simulated-only workloads."""
        self.parallel = parallel
        wall_seconds = wall_seconds or {}
        for name in sorted(shard_costs):
            if name in wall_seconds:
                self.add_child(name, shard_costs[name],
                               wall_ms=wall_seconds[name] * 1000.0)
            else:
                self.add_child(name, shard_costs[name])
        shard_children = [c for c in self.children
                          if c["shard"] != "balancer"]
        if parallel and shard_children:
            measured = [c for c in shard_children if "wall_ms" in c]
            if measured:
                slowest = max(measured, key=lambda c: c["wall_ms"])
            else:
                slowest = max(shard_children, key=lambda c: c["simulated_ms"])
            self.straggler = slowest["shard"]

    # -- rendering -------------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        record: dict[str, Any] = {
            "op": self.op,
            "ns": self.namespace,
            "opid": self.opid,
            "thread": self.thread,
            "started": self.started,
            "duration_ms": self.duration_ms,
            "simulated_ms": self.simulated_ms,
            "docs_examined": self.docs_examined,
            "docs_returned": self.docs_returned,
            "lock_wait_ms": self.lock_wait_ms,
        }
        if self.shape is not None:
            record["shape"] = self.shape
        if self.access_path is not None:
            record["access_path"] = self.access_path
        if self.plan_cache is not None:
            record["plan_cache"] = self.plan_cache
        if self.matched:
            record["matched"] = self.matched
        if self.modified:
            record["modified"] = self.modified
        if self.deleted:
            record["deleted"] = self.deleted
        if self.inserted:
            record["inserted"] = self.inserted
        if self.children:
            record["shards"] = list(self.children)
            record["parallel"] = self.parallel
        if self.straggler is not None:
            record["straggler"] = self.straggler
        if self.targeting is not None:
            record["targeting"] = self.targeting
        if self.errored is not None:
            record["errored"] = self.errored
        if self.source is not None:
            record["source"] = self.source
        return record


class _NullSpan:
    """Inert span handed out when a nested call wants a span object but
    profiling is disabled; accepts all mutations and renders nothing."""

    __slots__ = ()

    def note_plan(self, access_path: str, cache_state: str | None = None) -> None:
        pass

    def note_result(self, result: Any) -> None:
        pass


class Profiler:
    """Per-server operation profiler with a bounded slow-op log.

    ``enabled`` is a plain attribute so the instrumented hot paths pay only
    an attribute load and branch when profiling is off (level 0).
    """

    DEFAULT_CAPACITY = 256

    def __init__(self, registry: MetricsRegistry | None = None,
                 level: int = PROFILE_OFF, slow_ms: float = 100.0,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.level = level
        self.enabled = level > PROFILE_OFF
        self.slow_ms = slow_ms
        self._lock = threading.Lock()
        self._slow_ops: deque[dict[str, Any]] = deque(maxlen=capacity)
        self._in_flight: dict[int, ProfiledOp] = {}
        self._top: dict[str, dict[str, list[float]]] = {}
        self._opid = itertools.count(1)
        self.slow_ops_recorded = 0
        self.slow_ops_dropped = 0

    # -- configuration ---------------------------------------------------------

    def set_profiling(self, level: int, slow_ms: float | None = None,
                      capacity: int | None = None) -> dict[str, Any]:
        if level not in _PROFILE_LEVELS:
            raise ValidationError(f"profiling level must be 0, 1, or 2, got {level!r}")
        was = self.level
        with self._lock:
            self.level = level
            self.enabled = level > PROFILE_OFF
            if slow_ms is not None:
                self.slow_ms = float(slow_ms)
            if capacity is not None and capacity != self._slow_ops.maxlen:
                self._slow_ops = deque(self._slow_ops, maxlen=capacity)
        return {"was": was, "level": self.level, "slowms": self.slow_ms}

    # -- span lifecycle --------------------------------------------------------

    def start(self, op: str, namespace: str, shape: str | None = None) -> ProfiledOp:
        span = ProfiledOp(op, namespace, shape, next(self._opid),
                          threading.current_thread().name)
        with self._lock:
            self._in_flight[span.opid] = span
        return span

    def finish(self, span: ProfiledOp) -> None:
        span.duration_ms = (time.perf_counter() - span.started) * 1000.0
        record = span.as_dict()
        slow = span.simulated_ms > self.slow_ms
        registry = self.registry
        registry.increment(f"operations.{span.op}")
        registry.observe(f"latency.{span.op}", span.simulated_ms)
        if span.lock_wait_ms:
            registry.observe("lock_wait", span.lock_wait_ms)
        if span.errored is not None:
            registry.increment(f"errors.{span.op}")
        with self._lock:
            self._in_flight.pop(span.opid, None)
            per_ns = self._top.setdefault(span.namespace, {})
            entry = per_ns.setdefault(span.op, [0, 0.0])
            entry[0] += 1
            entry[1] += span.simulated_ms
            if self.level >= PROFILE_ALL or (self.level >= PROFILE_SLOW_ONLY and slow):
                if len(self._slow_ops) == self._slow_ops.maxlen:
                    self.slow_ops_dropped += 1
                self._slow_ops.append(record)
                self.slow_ops_recorded += 1
                if slow:
                    registry.increment("slow_ops")

    def operation(self, op: str, namespace: str,
                  shape: str | None = None) -> "_SpanContext":
        """Context manager: start a span, finish it on exit, mark errors."""
        return _SpanContext(self, op, namespace, shape)

    # -- reporting -------------------------------------------------------------

    def current_ops(self) -> list[dict[str, Any]]:
        now = time.perf_counter()
        with self._lock:
            spans = list(self._in_flight.values())
        report = []
        for span in spans:
            report.append({
                "opid": span.opid,
                "op": span.op,
                "ns": span.namespace,
                "shape": span.shape,
                "thread": span.thread,
                "running_ms": (now - span.started) * 1000.0,
            })
        return report

    def slow_ops(self, limit: int | None = None) -> list[dict[str, Any]]:
        with self._lock:
            entries = list(self._slow_ops)
        if limit is not None:
            entries = entries[-limit:]
        return entries

    def top(self) -> dict[str, dict[str, dict[str, float]]]:
        with self._lock:
            return {
                namespace: {
                    op: {"count": entry[0], "simulated_ms": entry[1]}
                    for op, entry in sorted(ops.items())
                }
                for namespace, ops in sorted(self._top.items())
            }

    def describe(self) -> dict[str, Any]:
        return {
            "level": self.level,
            "slowms": self.slow_ms,
            "slow_ops_recorded": self.slow_ops_recorded,
            "slow_ops_dropped": self.slow_ops_dropped,
            "in_flight": len(self._in_flight),
        }

    def reset(self) -> None:
        with self._lock:
            self._slow_ops.clear()
            self._top.clear()
            self.slow_ops_recorded = 0
            self.slow_ops_dropped = 0


class _SpanContext:
    """Context manager wrapper produced by :meth:`Profiler.operation`."""

    __slots__ = ("_profiler", "_op", "_namespace", "_shape", "span")

    def __init__(self, profiler: Profiler, op: str, namespace: str,
                 shape: str | None) -> None:
        self._profiler = profiler
        self._op = op
        self._namespace = namespace
        self._shape = shape
        self.span: ProfiledOp | None = None

    def __enter__(self) -> ProfiledOp:
        self.span = self._profiler.start(self._op, self._namespace, self._shape)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        span = self.span
        if span is not None:
            if exc is not None:
                span.errored = type(exc).__name__
            self._profiler.finish(span)
        return False


NULL_SPAN = _NullSpan()


class MetricsSampler:
    """FTDC-style periodic metrics snapshotter.

    Callers pump :meth:`maybe_sample` from their work loop (the workload
    runner does this between operations); a sample is only taken when
    ``interval_seconds`` have elapsed since the last one.  The series is
    bounded: the oldest samples fall off once ``max_samples`` is reached.
    """

    def __init__(self, snapshot_fn: Callable[[], dict[str, Any]],
                 interval_seconds: float = 1.0, max_samples: int = 600) -> None:
        if interval_seconds <= 0:
            raise ValidationError("sampler interval must be positive")
        if max_samples <= 0:
            raise ValidationError("sampler max_samples must be positive")
        self._snapshot_fn = snapshot_fn
        self.interval_seconds = interval_seconds
        self._samples: deque[dict[str, Any]] = deque(maxlen=max_samples)
        self._lock = threading.Lock()
        self._epoch = time.perf_counter()
        self._last_sample = float("-inf")

    def maybe_sample(self) -> bool:
        now = time.perf_counter()
        with self._lock:
            if now - self._last_sample < self.interval_seconds:
                return False
            self._last_sample = now
        self._take(now)
        return True

    def sample(self) -> dict[str, Any]:
        now = time.perf_counter()
        with self._lock:
            self._last_sample = now
        return self._take(now)

    def _take(self, now: float) -> dict[str, Any]:
        entry = {
            "elapsed_seconds": now - self._epoch,
            "metrics": self._snapshot_fn(),
        }
        with self._lock:
            self._samples.append(entry)
        return entry

    def series(self) -> list[dict[str, Any]]:
        with self._lock:
            return list(self._samples)

    def as_dict(self) -> dict[str, Any]:
        return {
            "interval_seconds": self.interval_seconds,
            "samples": self.series(),
        }


def render_query_shape(query: Any) -> str:
    """A human-readable query/pipeline shape: structure and operators are
    preserved, operand values are replaced by type markers (``#`` number,
    ``s`` string, ``b`` bool, ``n`` null, ``L`` list, ``D`` document) so
    spans group by shape without leaking operand values."""
    return json.dumps(_shape_of(query), sort_keys=True, default=str,
                      separators=(",", ":"))


def _shape_of(value: Any) -> Any:
    if isinstance(value, dict):
        return {key: _shape_of(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_shape_of(item) for item in value]
    if value is None:
        return "n"
    if isinstance(value, bool):
        return "b"
    if isinstance(value, (int, float)):
        return "#"
    if isinstance(value, str):
        return "s"
    return "D"


def merge_slow_ops(sources: Iterator[tuple[str, list[dict[str, Any]]]],
                   limit: int | None = None) -> list[dict[str, Any]]:
    """Merge slow-op entries from several (source_name, entries) pairs,
    annotating each entry with its source and ordering by start time."""
    merged: list[dict[str, Any]] = []
    for source, entries in sources:
        for entry in entries:
            tagged = dict(entry)
            tagged["source"] = source
            merged.append(tagged)
    merged.sort(key=lambda entry: entry.get("started", 0.0))
    if limit is not None:
        merged = merged[-limit:]
    return merged


def merge_top(tops: list[dict[str, dict[str, dict[str, float]]]]
              ) -> dict[str, dict[str, dict[str, float]]]:
    """Merge per-namespace ``top()`` reports by summing counts and times."""
    merged: dict[str, dict[str, dict[str, float]]] = {}
    for top in tops:
        for namespace, ops in top.items():
            per_ns = merged.setdefault(namespace, {})
            for op, entry in ops.items():
                slot = per_ns.setdefault(op, {"count": 0, "simulated_ms": 0.0})
                slot["count"] += entry["count"]
                slot["simulated_ms"] += entry["simulated_ms"]
    return merged
