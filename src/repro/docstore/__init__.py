"""A MongoDB-like document database with pluggable storage engines.

This package is the System under Evaluation (SuE) of the paper's
demonstration: the comparative evaluation of MongoDB's ``wiredTiger`` and
``mmapv1`` storage engines.  Since a real MongoDB server is not available in
this environment, the package implements a document database that exposes the
same externally visible behaviour the demo depends on:

* databases and collections with CRUD, rich query operators, update
  operators, ordered secondary indexes and cursors
  (:mod:`repro.docstore.collection`, :mod:`repro.docstore.matching`,
  :mod:`repro.docstore.update_ops`), planned by a cost-based query planner
  (:mod:`repro.docstore.planner`) over shared predicate analysis
  (:mod:`repro.docstore.predicates`), with ``explain()`` on every surface,
* an aggregation pipeline (:mod:`repro.docstore.aggregation`):
  ``$match``/``$project``/``$group``/``$sort``/``$limit`` stages executed as
  a streaming iterator chain, with a leading ``$match`` pushed into the
  query planner, ``$sort``+``$limit`` satisfied by ordered index walks, and
  on a cluster a scatter--partial--merge split that ships partial ``$group``
  accumulator states (and pre-sorted limited streams) from the shards to the
  router -- plus ``distinct()`` and sort-aware client cursors on top,
* two storage engines with the *mechanisms that make them differ* in the
  demo: a B-tree based, block-compressed, document-level-locking engine
  (:mod:`repro.docstore.wiredtiger`) and an extent-based, padded, in-place,
  collection-level-locking engine (:mod:`repro.docstore.mmapv1`), and
* a deterministic cost model (:mod:`repro.docstore.cost`) that converts those
  mechanisms into simulated service times so that experiments finish in
  seconds while preserving the comparative shape of the original results, and
* a sharded cluster (:mod:`repro.docstore.sharding`): N servers behind a
  ``mongos``-style query router with hash/range chunk placement, chunk
  splitting and a balancer, reachable through the same
  :class:`~repro.docstore.client.DocumentClient` as a single server, and
* replica sets (:mod:`repro.docstore.replication`): a primary serialising
  writes into an idempotent oplog that secondaries tail and replay, with
  write concern, read preference, replication lag, majority-vote elections
  and failure injection -- also behind the same client, and usable as the
  shards of a cluster (``ShardedCluster(shards=N, replicas=M)``), and
* the topology layer (:mod:`repro.docstore.topology`): a serializable
  :class:`~repro.docstore.topology.TopologySpec` describing a deployment
  shape (shards, replicas, quorum configuration, engine) and the single
  :func:`~repro.docstore.topology.build_topology` factory every consumer --
  benchmarks, agents, CLI and the control plane -- builds deployments
  through.
"""

from repro.docstore.client import DocumentClient
from repro.docstore.replication.failures import FailureInjector
from repro.docstore.replication.replica_set import ReplicaSet
from repro.docstore.server import DocumentServer
from repro.docstore.sharding.cluster import ShardedCluster
from repro.docstore.topology import TopologySpec, build_topology, topology_of

__all__ = ["DocumentServer", "DocumentClient", "ShardedCluster", "ReplicaSet",
           "FailureInjector", "TopologySpec", "build_topology", "topology_of"]

ENGINE_WIREDTIGER = "wiredtiger"
ENGINE_MMAPV1 = "mmapv1"
SUPPORTED_ENGINES = (ENGINE_WIREDTIGER, ENGINE_MMAPV1)
