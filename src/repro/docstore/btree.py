"""A copy-on-write B-tree keyed by record identifier.

The tree stores ``key -> value`` pairs in order, splits nodes when they exceed
the configured order and tracks the number of node accesses so the cost model
can charge for tree depth.  It deliberately implements only what the engine
needs: insert, point lookup, delete, in-order iteration and range scans.

**Concurrency model (PR 6).**  Mutations never touch published nodes: they
copy the root-to-leaf path they descend (path copying), build the change on
the private copies and then publish the new tree with a single atomic
assignment of ``self._root``.  Readers grab ``self._root`` once and traverse
a frozen snapshot, so point lookups, iteration and range scans are
*latch-free* -- they can run concurrently with any number of mutations and
always observe a consistent tree (the state as of their root load).  Writers
do NOT serialise each other; the owning engine must hold its own mutation
latch around ``insert``/``delete`` (concurrent unserialised writers would
publish over each other and lose updates).

``node_accesses`` is a best-effort cumulative counter: under concurrent
readers its increments can race, so per-operation costs should use the exact
per-call counts returned by :meth:`search`, :meth:`insert` and
:meth:`delete`; the cumulative counter remains for coarse accounting (the
planner's lazy range-cost estimate), where small drift only perturbs
simulated time, never results.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator


class _Node:
    """One tree node.  Once reachable from a published root it is immutable;
    mutation paths only ever modify private copies made by :func:`_clone`."""

    __slots__ = ("keys", "values", "children")

    def __init__(self) -> None:
        self.keys: list[Any] = []
        self.values: list[Any] = []
        self.children: list["_Node"] = []

    @property
    def is_leaf(self) -> bool:
        return not self.children


def _clone(node: _Node) -> _Node:
    copy = _Node()
    copy.keys = list(node.keys)
    copy.values = list(node.values)
    copy.children = list(node.children)
    return copy


class BTree:
    """An order-``order`` copy-on-write B-tree (max ``order - 1`` keys/node)."""

    def __init__(self, order: int = 32):
        if order < 4:
            raise ValueError("B-tree order must be at least 4")
        self._order = order
        self._root = _Node()
        self._size = 0
        self.node_accesses = 0

    # -- public API ---------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def insert(self, key: Any, value: Any) -> int:
        """Insert or overwrite ``key``; returns the nodes visited.

        The mutation is built on path copies and published atomically, so
        concurrent readers see either the old or the new tree, never a
        partial one.  Concurrent *writers* must be serialised by the caller.
        """
        root = self._root
        if len(root.keys) >= self._order - 1:
            new_root = _Node()
            new_root.children.append(root)
            self._split_child(new_root, 0)
            root = new_root
        new_root, replaced, visited = self._insert_cow(root, key, value)
        self._root = new_root
        if not replaced:
            self._size += 1
        self.node_accesses += visited
        return visited

    def get(self, key: Any) -> tuple[bool, Any]:
        """Return ``(found, value)``; latch-free snapshot lookup."""
        found, value, __ = self.search(key)
        return found, value

    def search(self, key: Any) -> tuple[bool, Any, int]:
        """Return ``(found, value, nodes visited)`` from one root snapshot.

        The per-call visited count is what concurrent readers must use for
        cost accounting (before/after deltas of ``node_accesses`` are torn
        by other readers).
        """
        node = self._root
        visited = 0
        while True:
            visited += 1
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                self.node_accesses += visited
                return True, node.values[index], visited
            if node.is_leaf:
                self.node_accesses += visited
                return False, None, visited
            node = node.children[index]

    def delete(self, key: Any) -> bool:
        """Delete ``key``; returns True when it existed.

        Deletion uses a simple tombstone-free strategy: the key is removed
        from its (path-copied) node; under-full nodes are tolerated (the
        tree never rebalances on delete).  Lookup and iteration remain
        correct, which is all the engine requires.  Like :meth:`insert`,
        the new tree is published atomically; callers serialise writers.
        """
        new_root, removed, visited = self._delete_cow(self._root, key)
        self.node_accesses += visited
        if not removed:
            return False
        while not new_root.keys and new_root.children:
            new_root = new_root.children[0]
        self._root = new_root
        self._size -= 1
        return True

    def items(self) -> Iterator[tuple[Any, Any]]:
        """In-order iteration over one consistent snapshot of the tree."""
        yield from self._iterate(self._root)

    def range(self, low: Any, high: Any) -> Iterator[tuple[Any, Any]]:
        """Yield pairs with ``low <= key <= high`` in order.

        This is a true range scan: it descends from the root snapshot to the
        first key ``>= low`` (recording the node accesses on the way down,
        as ``get`` does) and walks in order from there, stopping at the
        first key ``> high`` -- it never touches the part of the tree before
        ``low``.  The whole walk sees the tree as of the initial root load.
        """
        # Descend to the start position, remembering the path.  Each stack
        # entry is (node, index): for a leaf, the next key slot to emit; for
        # an internal node, the separator key to emit once its child at that
        # index has been exhausted.
        stack: list[tuple[_Node, int]] = []
        node = self._root
        while True:
            self.node_accesses += 1
            index = 0 if low is None else bisect.bisect_left(node.keys, low)
            stack.append((node, index))
            if node.is_leaf:
                break
            node = node.children[index]
        # In-order walk from the start position.
        while stack:
            node, index = stack.pop()
            if node.is_leaf:
                while index < len(node.keys):
                    key = node.keys[index]
                    if high is not None and key > high:
                        return
                    yield key, node.values[index]
                    index += 1
            elif index < len(node.keys):
                key = node.keys[index]
                if high is not None and key > high:
                    return
                yield key, node.values[index]
                stack.append((node, index + 1))
                child = node.children[index + 1]
                while True:
                    self.node_accesses += 1
                    stack.append((child, 0))
                    if child.is_leaf:
                        break
                    child = child.children[0]

    def depth(self) -> int:
        """Height of the tree (1 for a lone root leaf)."""
        depth = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            depth += 1
        return depth

    def check_invariants(self) -> None:
        """Raise AssertionError if ordering or fan-out invariants are violated."""
        self._check_node(self._root, lower=None, upper=None, is_root=True)

    # -- internals ------------------------------------------------------------

    def _insert_cow(self, node: _Node, key: Any, value: Any) -> tuple[_Node, bool, int]:
        """Insert into a private copy of ``node``'s subtree path.

        Returns ``(copied node, replaced existing key, nodes visited)``.
        ``node`` itself may already be a private copy (the pre-split root);
        cloning it again is still correct and keeps the logic uniform.
        """
        clone = _clone(node)
        index = bisect.bisect_left(clone.keys, key)
        if index < len(clone.keys) and clone.keys[index] == key:
            clone.values[index] = value
            return clone, True, 1
        if clone.is_leaf:
            clone.keys.insert(index, key)
            clone.values.insert(index, value)
            return clone, False, 1
        if len(clone.children[index].keys) >= self._order - 1:
            self._split_child(clone, index)
            if key > clone.keys[index]:
                index += 1
            elif key == clone.keys[index]:
                clone.values[index] = value
                return clone, True, 1
        child, replaced, visited = self._insert_cow(clone.children[index], key, value)
        clone.children[index] = child
        return clone, replaced, visited + 1

    def _split_child(self, parent: _Node, index: int) -> None:
        """Split ``parent.children[index]`` into two fresh halves.

        ``parent`` must be a private (unpublished) copy; the full child is a
        published node and is never mutated -- both halves are new nodes.
        """
        child = parent.children[index]
        middle = len(child.keys) // 2
        left = _Node()
        left.keys = child.keys[:middle]
        left.values = child.values[:middle]
        right = _Node()
        right.keys = child.keys[middle + 1:]
        right.values = child.values[middle + 1:]
        if not child.is_leaf:
            left.children = child.children[: middle + 1]
            right.children = child.children[middle + 1:]
        parent.keys.insert(index, child.keys[middle])
        parent.values.insert(index, child.values[middle])
        parent.children[index] = left
        parent.children.insert(index + 1, right)

    def _delete_cow(self, node: _Node, key: Any) -> tuple[_Node, bool, int]:
        """Delete ``key`` from a private copy of ``node``'s subtree path.

        Returns ``(copied node, removed, nodes visited)``.  When the key is
        absent the untouched original node is returned so no garbage copies
        are published.
        """
        index = bisect.bisect_left(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            clone = _clone(node)
            if clone.is_leaf:
                clone.keys.pop(index)
                clone.values.pop(index)
                return clone, True, 1
            return self._delete_internal(clone, index), True, 1
        if node.is_leaf:
            return node, False, 1
        child, removed, visited = self._delete_cow(node.children[index], key)
        if not removed:
            return node, False, visited + 1
        clone = _clone(node)
        clone.children[index] = child
        return clone, True, visited + 1

    def _delete_internal(self, node: _Node, index: int) -> _Node:
        """Delete ``node.keys[index]`` from a private internal-node copy.

        The key is replaced by its in-order predecessor (or successor) which
        is then removed from a path-copied version of the corresponding
        subtree.  When both adjacent subtrees hold no keys at all (possible
        because deletes never rebalance), the key and one empty child are
        dropped instead.
        """
        left, right = node.children[index], node.children[index + 1]
        predecessor = _last_entry(self._iterate(left))
        if predecessor is not None:
            node.keys[index], node.values[index] = predecessor
            new_left, __, __v = self._delete_cow(left, predecessor[0])
            node.children[index] = new_left
            return node
        successor = _first_entry(self._iterate(right))
        if successor is not None:
            node.keys[index], node.values[index] = successor
            new_right, __, __v = self._delete_cow(right, successor[0])
            node.children[index + 1] = new_right
            return node
        node.keys.pop(index)
        node.values.pop(index)
        node.children.pop(index + 1)
        return node

    def _iterate(self, node: _Node) -> Iterator[tuple[Any, Any]]:
        if node.is_leaf:
            yield from zip(node.keys, node.values)
            return
        for position, key in enumerate(node.keys):
            yield from self._iterate(node.children[position])
            yield key, node.values[position]
        yield from self._iterate(node.children[-1])

    def _check_node(self, node: _Node, lower: Any, upper: Any, is_root: bool) -> None:
        assert len(node.keys) == len(node.values)
        assert len(node.keys) <= self._order - 1, "node exceeds maximum fan-out"
        assert node.keys == sorted(node.keys), "keys within a node must be sorted"
        for key in node.keys:
            if lower is not None:
                assert key > lower, "key violates lower bound from parent"
            if upper is not None:
                assert key < upper, "key violates upper bound from parent"
        if not node.is_leaf:
            assert len(node.children) == len(node.keys) + 1
            bounds = [lower] + list(node.keys) + [upper]
            for position, child in enumerate(node.children):
                self._check_node(child, bounds[position], bounds[position + 1], False)


def _first_entry(items: Iterator[tuple[Any, Any]]) -> tuple[Any, Any] | None:
    for item in items:
        return item
    return None


def _last_entry(items: Iterator[tuple[Any, Any]]) -> tuple[Any, Any] | None:
    last = None
    for item in items:
        last = item
    return last
