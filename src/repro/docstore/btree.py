"""A B-tree keyed by record identifier, used by the wiredTiger-like engine.

The tree stores ``key -> value`` pairs in order, splits nodes when they exceed
the configured order and tracks the number of node accesses so the cost model
can charge for tree depth.  It deliberately implements only what the engine
needs: insert, point lookup, delete, in-order iteration and range scans.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator


class _Node:
    __slots__ = ("keys", "values", "children")

    def __init__(self) -> None:
        self.keys: list[Any] = []
        self.values: list[Any] = []
        self.children: list["_Node"] = []

    @property
    def is_leaf(self) -> bool:
        return not self.children


class BTree:
    """An order-``order`` B-tree (max ``order - 1`` keys per node)."""

    def __init__(self, order: int = 32):
        if order < 4:
            raise ValueError("B-tree order must be at least 4")
        self._order = order
        self._root = _Node()
        self._size = 0
        self.node_accesses = 0

    # -- public API ---------------------------------------------------------

    def __len__(self) -> int:
        return self._size

    def insert(self, key: Any, value: Any) -> None:
        """Insert or overwrite ``key``."""
        root = self._root
        if len(root.keys) >= self._order - 1:
            new_root = _Node()
            new_root.children.append(root)
            self._split_child(new_root, 0)
            self._root = new_root
        replaced = self._insert_non_full(self._root, key, value)
        if not replaced:
            self._size += 1

    def get(self, key: Any) -> tuple[bool, Any]:
        """Return ``(found, value)`` and record the nodes touched."""
        node = self._root
        while True:
            self.node_accesses += 1
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                return True, node.values[index]
            if node.is_leaf:
                return False, None
            node = node.children[index]

    def delete(self, key: Any) -> bool:
        """Delete ``key``; returns True when it existed.

        Deletion uses a simple tombstone-free strategy: the key is removed
        from its node; under-full nodes are tolerated (the tree never
        rebalances on delete).  Lookup and iteration remain correct, which is
        all the engine requires, while keeping the structure easy to verify.
        """
        removed = self._delete(self._root, key)
        if removed:
            self._size -= 1
            self._collapse_root()
        return removed

    def items(self) -> Iterator[tuple[Any, Any]]:
        """In-order iteration over ``(key, value)`` pairs."""
        yield from self._iterate(self._root)

    def range(self, low: Any, high: Any) -> Iterator[tuple[Any, Any]]:
        """Yield pairs with ``low <= key <= high`` in order.

        This is a true range scan: it descends from the root to the first
        key ``>= low`` (recording the node accesses on the way down, as
        ``get`` does) and walks in order from there, stopping at the first
        key ``> high`` -- it never touches the part of the tree before
        ``low``.
        """
        # Descend to the start position, remembering the path.  Each stack
        # entry is (node, index): for a leaf, the next key slot to emit; for
        # an internal node, the separator key to emit once its child at that
        # index has been exhausted.
        stack: list[tuple[_Node, int]] = []
        node = self._root
        while True:
            self.node_accesses += 1
            index = 0 if low is None else bisect.bisect_left(node.keys, low)
            stack.append((node, index))
            if node.is_leaf:
                break
            node = node.children[index]
        # In-order walk from the start position.
        while stack:
            node, index = stack.pop()
            if node.is_leaf:
                while index < len(node.keys):
                    key = node.keys[index]
                    if high is not None and key > high:
                        return
                    yield key, node.values[index]
                    index += 1
            elif index < len(node.keys):
                key = node.keys[index]
                if high is not None and key > high:
                    return
                yield key, node.values[index]
                stack.append((node, index + 1))
                child = node.children[index + 1]
                while True:
                    self.node_accesses += 1
                    stack.append((child, 0))
                    if child.is_leaf:
                        break
                    child = child.children[0]

    def depth(self) -> int:
        """Height of the tree (1 for a lone root leaf)."""
        depth = 1
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
            depth += 1
        return depth

    def check_invariants(self) -> None:
        """Raise AssertionError if ordering or fan-out invariants are violated."""
        self._check_node(self._root, lower=None, upper=None, is_root=True)

    # -- internals ------------------------------------------------------------

    def _insert_non_full(self, node: _Node, key: Any, value: Any) -> bool:
        self.node_accesses += 1
        index = bisect.bisect_left(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            node.values[index] = value
            return True
        if node.is_leaf:
            node.keys.insert(index, key)
            node.values.insert(index, value)
            return False
        child = node.children[index]
        if len(child.keys) >= self._order - 1:
            self._split_child(node, index)
            if key > node.keys[index]:
                index += 1
            elif key == node.keys[index]:
                node.values[index] = value
                return True
        return self._insert_non_full(node.children[index], key, value)

    def _split_child(self, parent: _Node, index: int) -> None:
        child = parent.children[index]
        middle = len(child.keys) // 2
        sibling = _Node()
        sibling.keys = child.keys[middle + 1:]
        sibling.values = child.values[middle + 1:]
        if not child.is_leaf:
            sibling.children = child.children[middle + 1:]
            child.children = child.children[: middle + 1]
        parent.keys.insert(index, child.keys[middle])
        parent.values.insert(index, child.values[middle])
        parent.children.insert(index + 1, sibling)
        child.keys = child.keys[:middle]
        child.values = child.values[:middle]

    def _delete(self, node: _Node, key: Any) -> bool:
        self.node_accesses += 1
        index = bisect.bisect_left(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            if node.is_leaf:
                node.keys.pop(index)
                node.values.pop(index)
                return True
            return self._delete_internal(node, index)
        if node.is_leaf:
            return False
        return self._delete(node.children[index], key)

    def _delete_internal(self, node: _Node, index: int) -> bool:
        """Delete ``node.keys[index]`` from an internal node.

        The key is replaced by its in-order predecessor (or successor) which
        is then removed from the corresponding subtree.  When both adjacent
        subtrees hold no keys at all (possible because deletes never
        rebalance), the key and one empty child are dropped instead.
        """
        left, right = node.children[index], node.children[index + 1]
        predecessor = _last_entry(self._iterate(left))
        if predecessor is not None:
            node.keys[index], node.values[index] = predecessor
            return self._delete(left, predecessor[0])
        successor = _first_entry(self._iterate(right))
        if successor is not None:
            node.keys[index], node.values[index] = successor
            return self._delete(right, successor[0])
        node.keys.pop(index)
        node.values.pop(index)
        node.children.pop(index + 1)
        return True

    def _collapse_root(self) -> None:
        while not self._root.keys and self._root.children:
            self._root = self._root.children[0]

    def _iterate(self, node: _Node) -> Iterator[tuple[Any, Any]]:
        if node.is_leaf:
            yield from zip(node.keys, node.values)
            return
        for position, key in enumerate(node.keys):
            yield from self._iterate(node.children[position])
            yield key, node.values[position]
        yield from self._iterate(node.children[-1])

    def _check_node(self, node: _Node, lower: Any, upper: Any, is_root: bool) -> None:
        assert len(node.keys) == len(node.values)
        assert len(node.keys) <= self._order - 1, "node exceeds maximum fan-out"
        assert node.keys == sorted(node.keys), "keys within a node must be sorted"
        for key in node.keys:
            if lower is not None:
                assert key > lower, "key violates lower bound from parent"
            if upper is not None:
                assert key < upper, "key violates upper bound from parent"
        if not node.is_leaf:
            assert len(node.children) == len(node.keys) + 1
            bounds = [lower] + list(node.keys) + [upper]
            for position, child in enumerate(node.children):
                self._check_node(child, bounds[position], bounds[position + 1], False)


def _first_entry(items: Iterator[tuple[Any, Any]]) -> tuple[Any, Any] | None:
    for item in items:
        return item
    return None


def _last_entry(items: Iterator[tuple[Any, Any]]) -> tuple[Any, Any] | None:
    last = None
    for item in items:
        last = item
    return last
