"""Least-recently-used block cache used by the wiredTiger-like engine."""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any


@dataclass
class CacheStats:
    """Hit/miss/eviction counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def snapshot(self) -> dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_ratio": self.hit_ratio,
        }


class LruCache:
    """Byte-budgeted LRU cache mapping record ids to (size, payload).

    Thread-safe: an internal mutex covers every operation.  ``get`` both
    reads and reorders (``move_to_end``) and ``put`` interleaves size
    bookkeeping with eviction, so unsynchronised concurrent access could
    corrupt the recency list or double-evict; the lock makes each call
    atomic.
    """

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.stats = CacheStats()
        self._entries: OrderedDict[Any, tuple[int, Any]] = OrderedDict()
        self._used = 0
        self._mutex = threading.Lock()

    def __contains__(self, key: Any) -> bool:
        with self._mutex:
            return key in self._entries

    def __len__(self) -> int:
        with self._mutex:
            return len(self._entries)

    @property
    def used_bytes(self) -> int:
        return self._used

    def get(self, key: Any) -> tuple[bool, Any]:
        """Return ``(hit, payload)`` and update recency + statistics."""
        with self._mutex:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return True, self._entries[key][1]
            self.stats.misses += 1
            return False, None

    def put(self, key: Any, size: int, payload: Any = None) -> None:
        """Insert or refresh an entry, evicting LRU entries to fit the budget."""
        with self._mutex:
            if key in self._entries:
                self._used -= self._entries[key][0]
                del self._entries[key]
            self._entries[key] = (size, payload)
            self._used += size
            while self._used > self.capacity_bytes and self._entries:
                _, (evicted_size, _) = self._entries.popitem(last=False)
                self._used -= evicted_size
                self.stats.evictions += 1

    def invalidate(self, key: Any) -> None:
        """Drop ``key`` from the cache if present."""
        with self._mutex:
            if key in self._entries:
                self._used -= self._entries[key][0]
                del self._entries[key]

    def clear(self) -> None:
        with self._mutex:
            self._entries.clear()
            self._used = 0
