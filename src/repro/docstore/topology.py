"""The topology layer: deployment shape as first-class, serializable data.

Before this module existed every consumer of the document store re-encoded
"what cluster shape am I talking to": the benchmark runner hand-built servers
or clusters, each Chronos agent re-parsed the same parameters, and the
control plane could not describe a deployment beyond a free-form environment
dictionary.  Real distributed stores treat topology (replication factor,
shard layout, quorum configuration) as a *declared property of a deployment*;
this module does the same for the reproduction.

Two pieces:

* :class:`TopologySpec` -- a frozen, validated, JSON-serializable value
  describing one deployment shape: shard count/key/strategy, replica count,
  write concern, read preference, replication lag and storage engine.  It
  round-trips through plain dictionaries (``as_dict``/``from_dict``) and
  JSON, so the control plane can store it in
  :attr:`~repro.core.entities.Deployment.environment`, validate it at
  registration time and sweep it across deployments.
* :func:`build_topology` -- the single factory turning a spec into a live
  deployment: a :class:`~repro.docstore.server.DocumentServer`, a
  :class:`~repro.docstore.replication.replica_set.ReplicaSet` or a
  :class:`~repro.docstore.sharding.cluster.ShardedCluster` (whose shards are
  replica sets when ``replicas > 1``).  Benchmarks, agents, the CLI and the
  control-plane examples all build through this one function; none of them
  contains topology-construction logic of its own.

:func:`topology_of` closes the loop for deployments that were built by hand
(tests, custom server factories): it derives the spec describing an existing
deployment object, so result reporting always comes from the topology layer.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields
from typing import Any, Mapping, Union

from repro.docstore.cost import CostParameters
from repro.docstore.replication.replica_set import (
    READ_PREFERENCES,
    READ_PRIMARY,
    WRITE_CONCERN_MAJORITY,
    ReplicaSet,
    resolve_write_concern,
)
from repro.docstore.server import _ENGINE_FACTORIES, DocumentServer
from repro.docstore.sharding.chunks import STRATEGIES, STRATEGY_HASH
from repro.docstore.sharding.cluster import ShardedCluster
from repro.errors import ValidationError

#: Everything :func:`build_topology` can return (the deployment surface a
#: :class:`~repro.docstore.client.DocumentClient` accepts).
DocumentDeployment = Union[DocumentServer, ReplicaSet, ShardedCluster]

KIND_STANDALONE = "standalone"
KIND_REPLICA_SET = "replica_set"
KIND_SHARDED = "sharded_cluster"
KIND_REPLICATED_CLUSTER = "replicated_cluster"

TOPOLOGY_KINDS = (KIND_STANDALONE, KIND_REPLICA_SET, KIND_SHARDED,
                  KIND_REPLICATED_CLUSTER)


def parse_write_concern(raw: Any) -> int | str:
    """``"majority"`` stays a string, anything else becomes an int."""
    if raw == WRITE_CONCERN_MAJORITY:
        return WRITE_CONCERN_MAJORITY
    try:
        return int(raw)
    except (TypeError, ValueError) as error:
        raise ValidationError(
            f"write concern must be an int or 'majority', got {raw!r}"
        ) from error


def parse_bool(raw: Any, name: str) -> bool:
    """Coerce a parameter-style boolean (``"true"``/``"0"``/``1``/...)."""
    if isinstance(raw, bool):
        return raw
    if isinstance(raw, (int, float)) and raw in (0, 1):
        return bool(raw)
    if isinstance(raw, str):
        lowered = raw.strip().lower()
        if lowered in ("true", "yes", "on", "1"):
            return True
        if lowered in ("false", "no", "off", "0"):
            return False
    raise ValidationError(f"{name} must be a boolean, got {raw!r}")


@dataclass(frozen=True)
class TopologySpec:
    """One deployment shape of the document store, as plain validated data.

    Attributes:
        shards: shard servers behind the query router (1 means unsharded).
        shard_key: field the sharded namespaces are partitioned on.
        shard_strategy: chunk placement strategy (``"hash"`` or ``"range"``).
        replicas: replica-set members per deployment/shard (1 means
            unreplicated).
        write_concern: ``1`` .. ``replicas`` or ``"majority"``.
        read_preference: ``"primary"`` / ``"secondary"`` / ``"nearest"``.
        replication_lag: oplog entries secondaries may trail behind.
        storage_engine: engine every server runs
            (``"wiredtiger"`` / ``"mmapv1"``).
        parallel_fanout: whether a sharded deployment's router dispatches
            multi-shard fan-outs concurrently through its per-shard
            executor pool (True, the default) or serially (the measured
            baseline of benchmark E17).  Ignored for unsharded shapes.
    """

    shards: int = 1
    shard_key: str = "_id"
    shard_strategy: str = STRATEGY_HASH
    replicas: int = 1
    write_concern: int | str = 1
    read_preference: str = READ_PRIMARY
    replication_lag: int = 0
    storage_engine: str = "wiredtiger"
    parallel_fanout: bool = True

    def __post_init__(self) -> None:
        if self.shards <= 0:
            raise ValidationError("shards must be positive")
        if not self.shard_key:
            raise ValidationError("shard_key cannot be empty")
        if self.shard_strategy not in STRATEGIES:
            raise ValidationError(
                f"shard_strategy must be one of {STRATEGIES}, "
                f"got {self.shard_strategy!r}"
            )
        if self.replicas <= 0:
            raise ValidationError("replicas must be positive")
        if self.read_preference not in READ_PREFERENCES:
            raise ValidationError(
                f"read_preference must be one of {READ_PREFERENCES}, "
                f"got {self.read_preference!r}"
            )
        if self.replication_lag < 0:
            raise ValidationError("replication_lag cannot be negative")
        if self.storage_engine not in _ENGINE_FACTORIES:
            raise ValidationError(
                f"unknown storage engine {self.storage_engine!r}; "
                f"supported: {sorted(_ENGINE_FACTORIES)}"
            )
        if not isinstance(self.parallel_fanout, bool):
            raise ValidationError(
                f"parallel_fanout must be a boolean, "
                f"got {self.parallel_fanout!r}"
            )
        try:
            resolve_write_concern(self.write_concern, self.replicas)
        except Exception as error:
            raise ValidationError(str(error)) from error

    # -- derived shape -----------------------------------------------------------------

    @property
    def is_sharded(self) -> bool:
        return self.shards > 1

    @property
    def is_replicated(self) -> bool:
        return self.replicas > 1

    @property
    def kind(self) -> str:
        """Which of the four deployment shapes this spec describes."""
        if self.is_sharded:
            return KIND_REPLICATED_CLUSTER if self.is_replicated else KIND_SHARDED
        return KIND_REPLICA_SET if self.is_replicated else KIND_STANDALONE

    def describe(self) -> str:
        """A one-line human description (used in agent logs and demos)."""
        if self.kind == KIND_STANDALONE:
            return f"{self.storage_engine} standalone server"
        if self.kind == KIND_REPLICA_SET:
            return (f"{self.storage_engine} replica set ({self.replicas} members, "
                    f"w={self.write_concern!r}, reads={self.read_preference}, "
                    f"lag={self.replication_lag})")
        description = (f"{self.storage_engine} sharded cluster ({self.shards} shards, "
                       f"{self.shard_strategy} placement on {self.shard_key!r}")
        if self.is_replicated:
            description += (f", {self.replicas}-member shards, "
                            f"w={self.write_concern!r}")
        if not self.parallel_fanout:
            description += ", serial fan-out"
        return description + ")"

    # -- serialization -----------------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """JSON-compatible form (what ``Deployment.environment`` stores)."""
        data = asdict(self)
        data["kind"] = self.kind
        return data

    @classmethod
    def from_dict(cls, mapping: Mapping[str, Any]) -> "TopologySpec":
        """Parse (and validate) a spec from its dictionary form.

        ``kind`` is derived data and therefore ignored on input; any other
        unknown field is rejected so typos fail loudly at registration time
        instead of silently evaluating the wrong topology.
        """
        if not isinstance(mapping, Mapping):
            raise ValidationError(
                f"a topology must be a mapping, got {type(mapping).__name__}"
            )
        data = dict(mapping)
        data.pop("kind", None)
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValidationError(f"unknown topology fields: {unknown}")
        if "write_concern" in data:
            data["write_concern"] = parse_write_concern(data["write_concern"])
        return cls(**data)

    @classmethod
    def from_partial(cls, mapping: Mapping[str, Any]) -> "TopologySpec":
        """Complete a *sparse* declaration to the minimal spec satisfying it.

        Where :meth:`from_dict` materializes class defaults (full-spec
        semantics), this validates a declaration that deliberately names
        only some fields: unnamed fields take their defaults, except
        ``replicas``, which grows to cover a declared numeric write concern
        (``{"write_concern": 2}`` alone implies at least two members, so it
        must not be rejected against the one-member default).
        """
        if not isinstance(mapping, Mapping):
            raise ValidationError(
                f"a topology must be a mapping, got {type(mapping).__name__}"
            )
        data = dict(mapping)
        data.pop("kind", None)
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValidationError(f"unknown topology fields: {unknown}")
        if "write_concern" in data:
            data["write_concern"] = parse_write_concern(data["write_concern"])
            write_concern = data["write_concern"]
            if isinstance(write_concern, int) and "replicas" not in data:
                data["replicas"] = max(write_concern, 1)
        return cls(**data)

    @classmethod
    def normalise_partial(cls, mapping: Mapping[str, Any]) -> dict[str, Any]:
        """Validate a sparse declaration and return only its named fields,
        normalised (what the control plane stores for dict declarations)."""
        spec = cls.from_partial(mapping)
        return {name: getattr(spec, name) for name in mapping if name != "kind"}

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "TopologySpec":
        try:
            decoded = json.loads(text)
        except json.JSONDecodeError as error:
            raise ValidationError(f"invalid topology JSON: {error}") from error
        return cls.from_dict(decoded)

    @classmethod
    def from_parameters(cls, parameters: Mapping[str, Any],
                        defaults: Mapping[str, Any] | None = None) -> "TopologySpec":
        """Build a spec from a Chronos parameter dictionary.

        ``parameters`` are the job parameters of an evaluation point; values
        arrive as strings or numbers depending on the parameter definition
        and are coerced here.  ``defaults`` sit below the parameters (an
        agent registration's assumed shape, or the topology declared on the
        deployment); empty-string parameters fall through to them.
        """
        merged: dict[str, Any] = dict(defaults or {})
        known = {spec_field.name for spec_field in fields(cls)}
        for name, value in parameters.items():
            if name in known and value not in ("", None):
                merged[name] = value
        try:
            return cls(
                shards=int(merged.get("shards", 1)),
                shard_key=str(merged.get("shard_key", "_id")),
                shard_strategy=str(merged.get("shard_strategy", STRATEGY_HASH)),
                replicas=int(merged.get("replicas", 1)),
                write_concern=parse_write_concern(merged.get("write_concern", 1)),
                read_preference=str(merged.get("read_preference", READ_PRIMARY)),
                replication_lag=int(merged.get("replication_lag", 0)),
                storage_engine=str(merged.get("storage_engine", "wiredtiger")),
                parallel_fanout=parse_bool(
                    merged.get("parallel_fanout", True), "parallel_fanout"),
            )
        except (TypeError, ValueError) as error:
            raise ValidationError(f"invalid topology parameters: {error}") from error

    # -- construction ------------------------------------------------------------------

    def build(self, cost_parameters: CostParameters | None = None,
              **engine_options: Any) -> DocumentDeployment:
        """Convenience alias for :func:`build_topology`."""
        return build_topology(self, cost_parameters=cost_parameters,
                              **engine_options)


def build_topology(spec: TopologySpec,
                   cost_parameters: CostParameters | None = None,
                   **engine_options: Any) -> DocumentDeployment:
    """Build the live deployment a :class:`TopologySpec` describes.

    The one place in the codebase that decides which deployment class a
    shape maps onto: ``shards == replicas == 1`` yields a plain
    :class:`DocumentServer`; ``replicas > 1`` alone a :class:`ReplicaSet`;
    ``shards > 1`` a :class:`ShardedCluster` whose shards are replica sets
    when ``replicas > 1``.
    """
    if not spec.is_sharded and not spec.is_replicated:
        return DocumentServer(spec.storage_engine,
                              cost_parameters=cost_parameters, **engine_options)
    if not spec.is_sharded:
        return ReplicaSet(
            members=spec.replicas,
            storage_engine=spec.storage_engine,
            write_concern=spec.write_concern,
            read_preference=spec.read_preference,
            replication_lag=spec.replication_lag,
            cost_parameters=cost_parameters,
            **engine_options,
        )
    return ShardedCluster(
        shards=spec.shards,
        storage_engine=spec.storage_engine,
        shard_key=spec.shard_key,
        strategy=spec.shard_strategy,
        replicas=spec.replicas,
        write_concern=spec.write_concern,
        read_preference=spec.read_preference,
        replication_lag=spec.replication_lag,
        parallel_fanout=spec.parallel_fanout,
        cost_parameters=cost_parameters,
        **engine_options,
    )


def topology_of(server: Any) -> TopologySpec:
    """Derive the spec describing an already-built deployment object.

    Lets consumers that received a hand-built deployment (tests, custom
    server factories) still report topology through the topology layer
    instead of probing attributes themselves.
    """
    if isinstance(server, ShardedCluster):
        if server.replicated:
            replica_set = server.replica_set(0)
            return TopologySpec(
                shards=server.shard_count,
                shard_key=server.default_shard_key,
                shard_strategy=server.default_strategy,
                replicas=server.replicas,
                write_concern=replica_set.write_concern,
                read_preference=replica_set.read_preference,
                replication_lag=replica_set.replication_lag,
                storage_engine=server.storage_engine,
                parallel_fanout=server.parallel_fanout,
            )
        return TopologySpec(
            shards=server.shard_count,
            shard_key=server.default_shard_key,
            shard_strategy=server.default_strategy,
            storage_engine=server.storage_engine,
            parallel_fanout=server.parallel_fanout,
        )
    if isinstance(server, ReplicaSet):
        return TopologySpec(
            replicas=server.replica_count,
            write_concern=server.write_concern,
            read_preference=server.read_preference,
            replication_lag=server.replication_lag,
            storage_engine=server.storage_engine,
        )
    return TopologySpec(
        storage_engine=getattr(server, "storage_engine", "wiredtiger")
    )
