"""Query matching: a MongoDB-style filter language.

Supports the operator subset exercised by the YCSB-style benchmark client and
the integration tests:

* implicit equality (``{"a": 1}``), dotted paths (``{"a.b": 1}``),
* comparison operators ``$eq``, ``$ne``, ``$gt``, ``$gte``, ``$lt``, ``$lte``,
  ``$in``, ``$nin``, ``$exists``,
* logical operators ``$and``, ``$or``, ``$not``, ``$nor``,
* array matching: a filter value matches if the field equals it or (for
  scalars) if any array element equals it, plus ``$size`` and ``$all``.
"""

from __future__ import annotations

from typing import Any

from repro.docstore.documents import get_path
from repro.errors import DocumentStoreError

_COMPARISON_OPERATORS = {
    "$eq",
    "$ne",
    "$gt",
    "$gte",
    "$lt",
    "$lte",
    "$in",
    "$nin",
    "$exists",
    "$size",
    "$all",
    "$not",
}
_LOGICAL_OPERATORS = {"$and", "$or", "$nor"}


def matches(document: dict[str, Any], query: dict[str, Any]) -> bool:
    """Return True when ``document`` satisfies ``query``."""
    if not isinstance(query, dict):
        raise DocumentStoreError("queries must be dictionaries")
    for key, condition in query.items():
        if key in _LOGICAL_OPERATORS:
            if not _matches_logical(document, key, condition):
                return False
        elif key.startswith("$"):
            raise DocumentStoreError(f"unknown top-level operator {key!r}")
        else:
            if not _matches_field(document, key, condition):
                return False
    return True


def _matches_logical(document: dict[str, Any], operator: str, condition: Any) -> bool:
    if not isinstance(condition, list) or not condition:
        raise DocumentStoreError(f"{operator} expects a non-empty list of queries")
    results = [matches(document, sub) for sub in condition]
    if operator == "$and":
        return all(results)
    if operator == "$or":
        return any(results)
    return not any(results)  # $nor


def _matches_field(document: dict[str, Any], path: str, condition: Any) -> bool:
    found, value = get_path(document, path)
    if is_operator_expression(condition):
        return _matches_operators(found, value, condition)
    return _values_equal(found, value, condition)


def is_operator_expression(condition: Any) -> bool:
    """True when ``condition`` is an operator document such as ``{"$gt": 5}``."""
    return isinstance(condition, dict) and any(
        key.startswith("$") for key in condition
    )


def _matches_operators(found: bool, value: Any, condition: dict[str, Any]) -> bool:
    for operator, operand in condition.items():
        if operator not in _COMPARISON_OPERATORS:
            raise DocumentStoreError(f"unknown query operator {operator!r}")
        if not _matches_operator(found, value, operator, operand):
            return False
    return True


def _matches_operator(found: bool, value: Any, operator: str, operand: Any) -> bool:
    if operator == "$exists":
        return found == bool(operand)
    if operator == "$eq":
        return _values_equal(found, value, operand)
    if operator == "$ne":
        return not _values_equal(found, value, operand)
    if operator == "$in":
        return any(_values_equal(found, value, candidate) for candidate in operand)
    if operator == "$nin":
        return not any(_values_equal(found, value, candidate) for candidate in operand)
    if operator == "$not":
        if not isinstance(operand, dict):
            raise DocumentStoreError("$not expects an operator expression")
        return not _matches_operators(found, value, operand)
    if operator == "$size":
        return isinstance(value, list) and len(value) == operand
    if operator == "$all":
        if not isinstance(value, list):
            return False
        return all(candidate in value for candidate in operand)
    if not found or value is None:
        return False
    if not _comparable(value, operand):
        return False
    if operator == "$gt":
        return value > operand
    if operator == "$gte":
        return value >= operand
    if operator == "$lt":
        return value < operand
    if operator == "$lte":
        return value <= operand
    raise DocumentStoreError(f"unknown query operator {operator!r}")


def _values_equal(found: bool, value: Any, expected: Any) -> bool:
    if not found:
        return expected is None
    if _scalar_equal(value, expected):
        return True
    if isinstance(value, list) and not isinstance(expected, list):
        return any(_scalar_equal(item, expected) for item in value)
    return False


def _scalar_equal(left: Any, right: Any) -> bool:
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    return left == right


def _comparable(left: Any, right: Any) -> bool:
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool)
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return True
    return isinstance(left, str) and isinstance(right, str)


def query_fields(query: dict[str, Any]) -> set[str]:
    """Return the set of field paths a query constrains (used for index selection)."""
    fields: set[str] = set()
    for key, condition in query.items():
        if key in _LOGICAL_OPERATORS:
            for sub in condition:
                fields.update(query_fields(sub))
        elif not key.startswith("$"):
            fields.add(key)
    return fields


def equality_value(query: dict[str, Any], field: str) -> tuple[bool, Any]:
    """Return ``(True, value)`` if ``query`` pins ``field`` to a single value."""
    if field not in query:
        return False, None
    condition = query[field]
    if is_operator_expression(condition):
        if set(condition) == {"$eq"}:
            return True, condition["$eq"]
        if set(condition) == {"$in"} and len(condition["$in"]) == 1:
            return True, condition["$in"][0]
        return False, None
    if isinstance(condition, dict):
        return False, None
    return True, condition
