"""Query matching: a MongoDB-style filter language.

Supports the operator subset exercised by the YCSB-style benchmark client and
the integration tests:

* implicit equality (``{"a": 1}``), dotted paths (``{"a.b": 1}``),
* comparison operators ``$eq``, ``$ne``, ``$gt``, ``$gte``, ``$lt``, ``$lte``,
  ``$in``, ``$nin``, ``$exists``,
* logical operators ``$and``, ``$or``, ``$not``, ``$nor``,
* array matching: a filter value matches if the field equals it or (for
  scalars) if any array element equals it, plus ``$size`` and ``$all``.

Two evaluation strategies share these semantics:

* :func:`matches` interprets the raw query dict per document -- the reference
  implementation, kept for differential testing and one-off checks.
* :func:`compile_query` parses the query **once** into a tree of closures (a
  :class:`Matcher`).  Operand values are *parameterized*: the compiled form
  depends only on the query's shape (structure, operators, value type ranks)
  and reads concrete operands from a parameter list, so the planner can cache
  one compiled matcher per :func:`query_shape` and re-bind it to every
  same-shaped query for free.  Evaluating a compiled matcher skips all dict
  re-interpretation, operator dispatch and path splitting on the per-document
  hot path.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.docstore.documents import get_path
from repro.errors import DocumentStoreError

_COMPARISON_OPERATORS = {
    "$eq",
    "$ne",
    "$gt",
    "$gte",
    "$lt",
    "$lte",
    "$in",
    "$nin",
    "$exists",
    "$size",
    "$all",
    "$not",
}
_LOGICAL_OPERATORS = {"$and", "$or", "$nor"}


def matches(document: dict[str, Any], query: dict[str, Any]) -> bool:
    """Return True when ``document`` satisfies ``query``."""
    if not isinstance(query, dict):
        raise DocumentStoreError("queries must be dictionaries")
    for key, condition in query.items():
        if key in _LOGICAL_OPERATORS:
            if not _matches_logical(document, key, condition):
                return False
        elif key.startswith("$"):
            raise DocumentStoreError(f"unknown top-level operator {key!r}")
        else:
            if not _matches_field(document, key, condition):
                return False
    return True


def _matches_logical(document: dict[str, Any], operator: str, condition: Any) -> bool:
    if not isinstance(condition, list) or not condition:
        raise DocumentStoreError(f"{operator} expects a non-empty list of queries")
    results = [matches(document, sub) for sub in condition]
    if operator == "$and":
        return all(results)
    if operator == "$or":
        return any(results)
    return not any(results)  # $nor


def _matches_field(document: dict[str, Any], path: str, condition: Any) -> bool:
    found, value = get_path(document, path)
    if is_operator_expression(condition):
        return _matches_operators(found, value, condition)
    return _values_equal(found, value, condition)


def is_operator_expression(condition: Any) -> bool:
    """True when ``condition`` is an operator document such as ``{"$gt": 5}``."""
    return isinstance(condition, dict) and any(
        key.startswith("$") for key in condition
    )


def _matches_operators(found: bool, value: Any, condition: dict[str, Any]) -> bool:
    for operator, operand in condition.items():
        if operator not in _COMPARISON_OPERATORS:
            raise DocumentStoreError(f"unknown query operator {operator!r}")
        if not _matches_operator(found, value, operator, operand):
            return False
    return True


def _matches_operator(found: bool, value: Any, operator: str, operand: Any) -> bool:
    if operator == "$exists":
        return found == bool(operand)
    if operator == "$eq":
        return _values_equal(found, value, operand)
    if operator == "$ne":
        return not _values_equal(found, value, operand)
    if operator == "$in":
        return any(_values_equal(found, value, candidate) for candidate in operand)
    if operator == "$nin":
        return not any(_values_equal(found, value, candidate) for candidate in operand)
    if operator == "$not":
        if not isinstance(operand, dict):
            raise DocumentStoreError("$not expects an operator expression")
        return not _matches_operators(found, value, operand)
    if operator == "$size":
        return isinstance(value, list) and len(value) == operand
    if operator == "$all":
        if not isinstance(value, list):
            return False
        return all(candidate in value for candidate in operand)
    if not found or value is None:
        return False
    if not _comparable(value, operand):
        return False
    if operator == "$gt":
        return value > operand
    if operator == "$gte":
        return value >= operand
    if operator == "$lt":
        return value < operand
    if operator == "$lte":
        return value <= operand
    raise DocumentStoreError(f"unknown query operator {operator!r}")


def _values_equal(found: bool, value: Any, expected: Any) -> bool:
    if not found:
        return expected is None
    if _scalar_equal(value, expected):
        return True
    if isinstance(value, list) and not isinstance(expected, list):
        return any(_scalar_equal(item, expected) for item in value)
    return False


def _scalar_equal(left: Any, right: Any) -> bool:
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    return left == right


def _comparable(left: Any, right: Any) -> bool:
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool)
    if isinstance(left, (int, float)) and isinstance(right, (int, float)):
        return True
    return isinstance(left, str) and isinstance(right, str)


# -- compiled queries ------------------------------------------------------------
#
# ``_compile_clauses`` and ``_shape_clauses`` walk the query with the *same*
# structure: every operand value the former captures as a parameter index,
# the latter appends to the parameter list at the same step.  Keeping the two
# walks textually parallel is what guarantees that a compiled matcher cached
# under a shape key can be re-bound to any query producing that key
# (regression-tested differentially against ``matches`` in
# ``tests/docstore/test_compiled_matching.py``).

_Predicate = Callable[[dict, list], bool]
_OpTest = Callable[[bool, Any, list], bool]


class CompiledQuery:
    """A query parsed once into closures, parameterized by operand values."""

    __slots__ = ("predicates", "param_count")

    def __init__(self, predicates: list[_Predicate], param_count: int):
        self.predicates = predicates
        self.param_count = param_count

    def test(self, document: dict[str, Any], params: list[Any]) -> bool:
        for predicate in self.predicates:
            if not predicate(document, params):
                return False
        return True


class Matcher:
    """A compiled query bound to concrete operand values: ``matcher(doc)``."""

    __slots__ = ("compiled", "params")

    def __init__(self, compiled: CompiledQuery, params: list[Any]):
        self.compiled = compiled
        self.params = params

    def __call__(self, document: dict[str, Any]) -> bool:
        return self.compiled.test(document, self.params)


def compile_query(query: dict[str, Any]) -> Matcher:
    """Compile ``query`` into a reusable matcher (same semantics as ``matches``)."""
    if not isinstance(query, dict):
        raise DocumentStoreError("queries must be dictionaries")
    __, params = query_shape(query)
    return Matcher(compile_shape(query), params)


def compile_shape(query: dict[str, Any]) -> CompiledQuery:
    """Compile the *shape* of ``query``; operands are read from a param list."""
    if not isinstance(query, dict):
        raise DocumentStoreError("queries must be dictionaries")
    counter = [0]
    predicates = _compile_clauses(query, counter)
    return CompiledQuery(predicates, counter[0])


def query_shape(query: dict[str, Any]) -> tuple[tuple, list[Any]]:
    """Return ``(shape key, params)`` for ``query``.

    The shape key is hashable and captures everything planning and
    compilation depend on -- structure, field paths, operators, and the type
    rank of each operand (plan choice is rank-sensitive: ``$gt 5`` is a range
    scan while ``$gt [5]`` is provably empty).  ``params`` are the operand
    values in compilation order, ready to bind a cached
    :class:`CompiledQuery` for this exact query.
    """
    if not isinstance(query, dict):
        raise DocumentStoreError("queries must be dictionaries")
    params: list[Any] = []
    return _shape_clauses(query, params), params


def _value_marker(value: Any) -> Any:
    """The shape placeholder of one operand value (its planning-relevant type)."""
    if value is None:
        return "n"
    if isinstance(value, bool):
        return "b"
    if isinstance(value, (int, float)):
        return "#"
    if isinstance(value, str):
        return "s"
    if isinstance(value, (list, tuple)):
        return "L"
    return "D"


def _sequence_marker(operand: Any) -> Any:
    """Shape placeholder for ``$in``/``$nin`` operands: planning cares whether
    the operand is a real sequence, whether it contains ``None``, and whether
    it is a single point (a one-element ``$in`` on ``_id`` is an id lookup)."""
    if not isinstance(operand, (list, tuple)):
        return ("!seq", _value_marker(operand))
    return ("seq", any(value is None for value in operand), len(operand) == 1)


def _shape_clauses(query: dict[str, Any], params: list[Any]) -> tuple:
    parts: list[Any] = []
    for key, condition in query.items():
        if key in _LOGICAL_OPERATORS:
            if not isinstance(condition, list) or not condition:
                raise DocumentStoreError(
                    f"{key} expects a non-empty list of queries"
                )
            branches = []
            for sub in condition:
                if not isinstance(sub, dict):
                    raise DocumentStoreError("queries must be dictionaries")
                branches.append(_shape_clauses(sub, params))
            parts.append((key, tuple(branches)))
        elif key.startswith("$"):
            raise DocumentStoreError(f"unknown top-level operator {key!r}")
        elif is_operator_expression(condition):
            parts.append((key, "ops", _shape_operators(condition, params)))
        else:
            params.append(condition)
            parts.append((key, "eq", _value_marker(condition)))
    return tuple(parts)


def _shape_operators(condition: dict[str, Any], params: list[Any]) -> tuple:
    parts: list[Any] = []
    for operator, operand in condition.items():
        if operator not in _COMPARISON_OPERATORS:
            raise DocumentStoreError(f"unknown query operator {operator!r}")
        if operator == "$not":
            if not isinstance(operand, dict):
                raise DocumentStoreError("$not expects an operator expression")
            parts.append(("$not", _shape_operators(operand, params)))
        elif operator in ("$in", "$nin"):
            params.append(operand)
            parts.append((operator, _sequence_marker(operand)))
        else:
            params.append(operand)
            parts.append((operator, _value_marker(operand)))
    return tuple(parts)


def _compile_clauses(query: dict[str, Any], counter: list[int]) -> list[_Predicate]:
    predicates: list[_Predicate] = []
    for key, condition in query.items():
        if key in _LOGICAL_OPERATORS:
            if not isinstance(condition, list) or not condition:
                raise DocumentStoreError(
                    f"{key} expects a non-empty list of queries"
                )
            branches = []
            for sub in condition:
                if not isinstance(sub, dict):
                    raise DocumentStoreError("queries must be dictionaries")
                branches.append(_compile_clauses(sub, counter))
            predicates.append(_compile_logical(key, branches))
        elif key.startswith("$"):
            raise DocumentStoreError(f"unknown top-level operator {key!r}")
        else:
            predicates.append(_compile_field(key, condition, counter))
    return predicates


def _compile_logical(operator: str, branches: list[list[_Predicate]]) -> _Predicate:
    if operator == "$and":
        def test_and(document: dict, params: list) -> bool:
            for branch in branches:
                for predicate in branch:
                    if not predicate(document, params):
                        return False
            return True
        return test_and
    if operator == "$or":
        def test_or(document: dict, params: list) -> bool:
            for branch in branches:
                if all(predicate(document, params) for predicate in branch):
                    return True
            return False
        return test_or

    def test_nor(document: dict, params: list) -> bool:
        for branch in branches:
            if all(predicate(document, params) for predicate in branch):
                return False
        return True
    return test_nor


def _compile_resolver(path: str) -> Callable[[dict], tuple[bool, Any]]:
    """Pre-split the dotted path once; single-segment paths skip the walk."""
    if "." not in path:
        missing = _MISSING

        def resolve_flat(document: dict) -> tuple[bool, Any]:
            value = document.get(path, missing)
            if value is missing:
                return False, None
            return True, value
        return resolve_flat

    def resolve_nested(document: dict) -> tuple[bool, Any]:
        return get_path(document, path)
    return resolve_nested


_MISSING = object()


def _compile_field(path: str, condition: Any, counter: list[int]) -> _Predicate:
    resolve = _compile_resolver(path)
    if is_operator_expression(condition):
        tests = _compile_operators(condition, counter)
        if len(tests) == 1:
            only = tests[0]

            def predicate_single(document: dict, params: list) -> bool:
                found, value = resolve(document)
                return only(found, value, params)
            return predicate_single

        def predicate_ops(document: dict, params: list) -> bool:
            found, value = resolve(document)
            for test in tests:
                if not test(found, value, params):
                    return False
            return True
        return predicate_ops

    slot = counter[0]
    counter[0] += 1

    def predicate_eq(document: dict, params: list) -> bool:
        found, value = resolve(document)
        return _values_equal(found, value, params[slot])
    return predicate_eq


def _compile_operators(condition: dict[str, Any], counter: list[int]) -> list[_OpTest]:
    tests: list[_OpTest] = []
    for operator, operand in condition.items():
        if operator not in _COMPARISON_OPERATORS:
            raise DocumentStoreError(f"unknown query operator {operator!r}")
        if operator == "$not":
            if not isinstance(operand, dict):
                raise DocumentStoreError("$not expects an operator expression")
            inner = _compile_operators(operand, counter)

            def test_not(found: bool, value: Any, params: list,
                         inner: list[_OpTest] = inner) -> bool:
                return not all(test(found, value, params) for test in inner)
            tests.append(test_not)
            continue
        slot = counter[0]
        counter[0] += 1
        tests.append(_compile_operator(operator, slot))
    return tests


def _compile_operator(operator: str, slot: int) -> _OpTest:
    if operator == "$exists":
        return lambda found, value, params: found == bool(params[slot])
    if operator == "$eq":
        return lambda found, value, params: _values_equal(found, value, params[slot])
    if operator == "$ne":
        return lambda found, value, params: not _values_equal(found, value,
                                                              params[slot])
    if operator == "$in":
        return lambda found, value, params: any(
            _values_equal(found, value, candidate) for candidate in params[slot])
    if operator == "$nin":
        return lambda found, value, params: not any(
            _values_equal(found, value, candidate) for candidate in params[slot])
    if operator == "$size":
        return lambda found, value, params: (isinstance(value, list)
                                             and len(value) == params[slot])
    if operator == "$all":
        return lambda found, value, params: (isinstance(value, list) and all(
            candidate in value for candidate in params[slot]))

    # Ordered comparisons share the found/None/comparability guard of
    # ``_matches_operator``.
    if operator == "$gt":
        def test_gt(found: bool, value: Any, params: list) -> bool:
            if not found or value is None:
                return False
            operand = params[slot]
            return _comparable(value, operand) and value > operand
        return test_gt
    if operator == "$gte":
        def test_gte(found: bool, value: Any, params: list) -> bool:
            if not found or value is None:
                return False
            operand = params[slot]
            return _comparable(value, operand) and value >= operand
        return test_gte
    if operator == "$lt":
        def test_lt(found: bool, value: Any, params: list) -> bool:
            if not found or value is None:
                return False
            operand = params[slot]
            return _comparable(value, operand) and value < operand
        return test_lt
    if operator == "$lte":
        def test_lte(found: bool, value: Any, params: list) -> bool:
            if not found or value is None:
                return False
            operand = params[slot]
            return _comparable(value, operand) and value <= operand
        return test_lte
    raise DocumentStoreError(f"unknown query operator {operator!r}")


def query_fields(query: dict[str, Any]) -> set[str]:
    """Return the set of field paths a query constrains (used for index selection)."""
    fields: set[str] = set()
    for key, condition in query.items():
        if key in _LOGICAL_OPERATORS:
            for sub in condition:
                fields.update(query_fields(sub))
        elif not key.startswith("$"):
            fields.add(key)
    return fields


def equality_value(query: dict[str, Any], field: str) -> tuple[bool, Any]:
    """Return ``(True, value)`` if ``query`` pins ``field`` to a single value."""
    if field not in query:
        return False, None
    condition = query[field]
    if is_operator_expression(condition):
        if set(condition) == {"$eq"}:
            return True, condition["$eq"]
        if set(condition) == {"$in"} and len(condition["$in"]) == 1:
            return True, condition["$in"][0]
        return False, None
    if isinstance(condition, dict):
        return False, None
    return True, condition
