"""Storage engine interface shared by the wiredTiger and mmapv1 simulations."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterator

from repro.docstore.cost import ConcurrencyProfile, CostAccumulator, CostParameters
from repro.docstore.documents import document_size
from repro.docstore.locks import LockGranularity, LockManager


class StorageEngine(ABC):
    """Stores document payloads keyed by record id and accounts for their cost.

    A :class:`~repro.docstore.collection.Collection` owns exactly one engine
    instance.  The engine is responsible for

    * physically storing and retrieving documents,
    * tracking the simulated on-disk footprint, and
    * charging simulated service time for each operation via its
      :class:`~repro.docstore.cost.CostAccumulator`.

    The collection layer handles query matching, secondary indexes and id
    assignment; engines only ever see opaque record identifiers.

    **Copy-on-write document protocol.**  Engines never copy documents.  The
    caller (the collection write boundary) hands ``insert``/``update`` a
    *frozen* canonical document it promises never to mutate in place, along
    with its precomputed ``document_size`` (``size=None`` recomputes it, for
    direct engine use in tests).  ``read``/``scan`` hand the stored object
    back by reference; whoever exposes documents to external callers (the
    client surface) is responsible for the single defensive copy.
    """

    name: str = "abstract"
    lock_granularity: LockGranularity = LockGranularity.COLLECTION
    concurrency = ConcurrencyProfile(
        serial_write_fraction=1.0, serial_read_fraction=0.0, parallel_efficiency=0.8
    )

    def __init__(self, parameters: CostParameters | None = None):
        self.parameters = parameters or CostParameters()
        self.costs = CostAccumulator(self.parameters)
        self.locks = LockManager(self.lock_granularity)

    # -- storage operations --------------------------------------------------

    @abstractmethod
    def insert(self, record_id: str, document: dict[str, Any],
               size: int | None = None) -> float:
        """Store a new frozen document; return the simulated cost in seconds."""

    @abstractmethod
    def read(self, record_id: str) -> tuple[dict[str, Any] | None, float]:
        """Return ``(document, cost)``; document is None when missing.

        The returned document is the stored object itself -- callers must
        treat it as immutable.
        """

    @abstractmethod
    def update(self, record_id: str, document: dict[str, Any],
               size: int | None = None) -> float:
        """Replace the stored document with a new frozen one; return the cost."""

    @abstractmethod
    def delete(self, record_id: str) -> float:
        """Remove the document; return the simulated cost."""

    @abstractmethod
    def scan(self) -> Iterator[tuple[str, dict[str, Any], float]]:
        """Yield ``(record_id, document, cost)`` for every stored document.

        Documents are the stored objects themselves (no copies).
        """

    @abstractmethod
    def count(self) -> int:
        """Number of stored documents."""

    @abstractmethod
    def storage_bytes(self) -> int:
        """Simulated on-disk footprint in bytes (including padding/compression)."""

    def scan_uncharged(self) -> Iterator[tuple[str, dict[str, Any]]]:
        """Yield ``(record_id, document)`` for every stored document without
        charging simulated cost per document.

        For bulk consumers (the aggregation source) that account the whole
        scan in one accumulation -- :meth:`scan_cost_per_document` per
        yielded document via ``charge_many`` -- instead of paying one charge
        call per document.  Engines override this with a direct iteration;
        the default goes through :meth:`scan` and therefore *does* charge.
        """
        for record_id, document, __ in self.scan():
            yield record_id, document

    def peek(self, record_id: str) -> dict[str, Any] | None:
        """Return the stored document without charging any simulated cost.

        Used by write paths that need to revalidate a candidate under their
        write latch (locate-lock-revalidate) -- the revalidation read is
        bookkeeping, not a billable client operation.  Engines override this
        with a direct, charge-free lookup; the default goes through
        :meth:`read` and therefore *does* charge.
        """
        document, __ = self.read(record_id)
        return document

    def verify_accounting(self) -> None:
        """Assert internal byte-accounting invariants (no-op by default).

        Engines that keep running totals alongside per-record state override
        this to check the totals against a recomputation; the concurrency
        stress suite calls it after multi-threaded mixes to catch lost
        read-modify-write updates.
        """

    def insert_batch(self, records: list[tuple[str, dict[str, Any], int]]) -> float:
        """Store many frozen documents in one round; return the total cost.

        ``records`` is a list of ``(record_id, document, size)`` triples.  The
        default implementation simply loops :meth:`insert`; engines override
        it to amortise their per-batch bookkeeping.  The simulated cost and
        per-operation counters stay identical to the equivalent sequence of
        single inserts -- batching is a wall-clock optimisation, not a change
        to the cost model.
        """
        return sum(self.insert(record_id, document, size)
                   for record_id, document, size in records)

    @staticmethod
    def _size_of(document: dict[str, Any], size: int | None) -> int:
        """The document's precomputed size, recomputed only when absent."""
        return document_size(document) if size is None else size

    # -- planner cost estimates ---------------------------------------------------

    def scan_cost_per_document(self) -> float:
        """Simulated cost of touching one document during a full scan.

        The query planner uses this (times the document count) to estimate
        the ``FULL_SCAN`` access path; engines override it to match what
        their :meth:`scan` actually charges per document.
        """
        return self.parameters.node_access

    def point_read_cost_estimate(self) -> float:
        """Planner estimate for fetching one candidate document by record id."""
        return self.parameters.base_operation + self.parameters.node_access

    # -- reporting --------------------------------------------------------------

    def index_maintenance_cost(self, index_count: int, operations: int = 1) -> float:
        """Cost of updating ``index_count`` secondary indexes per write, for
        ``operations`` writes (batch paths amortise the accounting into one
        accumulation without changing the totals or counters)."""
        cost = index_count * self.parameters.index_maintenance * operations
        if not cost:
            return 0.0
        return self.costs.charge_many("index_maintenance", cost, operations)

    def statistics(self) -> dict[str, Any]:
        """A statistics document similar to MongoDB's ``collStats``."""
        return {
            "engine": self.name,
            "documents": self.count(),
            "storage_bytes": self.storage_bytes(),
            "simulated_seconds": self.costs.total_seconds,
            "operations": self.costs.snapshot(),
            "locks": self.locks.stats.snapshot(),
            "lock_granularity": self.lock_granularity.value,
        }
