"""Storage engine interface shared by the wiredTiger and mmapv1 simulations."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Iterator

from repro.docstore.cost import ConcurrencyProfile, CostAccumulator, CostParameters
from repro.docstore.locks import LockGranularity, LockManager


class StorageEngine(ABC):
    """Stores document payloads keyed by record id and accounts for their cost.

    A :class:`~repro.docstore.collection.Collection` owns exactly one engine
    instance.  The engine is responsible for

    * physically storing and retrieving documents,
    * tracking the simulated on-disk footprint, and
    * charging simulated service time for each operation via its
      :class:`~repro.docstore.cost.CostAccumulator`.

    The collection layer handles query matching, secondary indexes and id
    assignment; engines only ever see opaque record identifiers.
    """

    name: str = "abstract"
    lock_granularity: LockGranularity = LockGranularity.COLLECTION
    concurrency = ConcurrencyProfile(
        serial_write_fraction=1.0, serial_read_fraction=0.0, parallel_efficiency=0.8
    )

    def __init__(self, parameters: CostParameters | None = None):
        self.parameters = parameters or CostParameters()
        self.costs = CostAccumulator(self.parameters)
        self.locks = LockManager(self.lock_granularity)

    # -- storage operations --------------------------------------------------

    @abstractmethod
    def insert(self, record_id: str, document: dict[str, Any]) -> float:
        """Store a new document; return the simulated cost in seconds."""

    @abstractmethod
    def read(self, record_id: str) -> tuple[dict[str, Any] | None, float]:
        """Return ``(document, cost)``; document is None when missing."""

    @abstractmethod
    def update(self, record_id: str, document: dict[str, Any]) -> float:
        """Replace the stored document; return the simulated cost."""

    @abstractmethod
    def delete(self, record_id: str) -> float:
        """Remove the document; return the simulated cost."""

    @abstractmethod
    def scan(self) -> Iterator[tuple[str, dict[str, Any], float]]:
        """Yield ``(record_id, document, cost)`` for every stored document."""

    @abstractmethod
    def count(self) -> int:
        """Number of stored documents."""

    @abstractmethod
    def storage_bytes(self) -> int:
        """Simulated on-disk footprint in bytes (including padding/compression)."""

    # -- planner cost estimates ---------------------------------------------------

    def scan_cost_per_document(self) -> float:
        """Simulated cost of touching one document during a full scan.

        The query planner uses this (times the document count) to estimate
        the ``FULL_SCAN`` access path; engines override it to match what
        their :meth:`scan` actually charges per document.
        """
        return self.parameters.node_access

    def point_read_cost_estimate(self) -> float:
        """Planner estimate for fetching one candidate document by record id."""
        return self.parameters.base_operation + self.parameters.node_access

    # -- reporting --------------------------------------------------------------

    def index_maintenance_cost(self, index_count: int) -> float:
        """Cost of updating ``index_count`` secondary indexes for one write."""
        cost = index_count * self.parameters.index_maintenance
        return self.costs.charge("index_maintenance", cost) if cost else 0.0

    def statistics(self) -> dict[str, Any]:
        """A statistics document similar to MongoDB's ``collStats``."""
        return {
            "engine": self.name,
            "documents": self.count(),
            "storage_bytes": self.storage_bytes(),
            "simulated_seconds": self.costs.total_seconds,
            "operations": self.costs.snapshot(),
            "locks": self.locks.stats.snapshot(),
            "lock_granularity": self.lock_granularity.value,
        }
