"""A driver-style client for the document server.

The evaluation clients (and the MongoDB Chronos agent) talk to the SuE
through this client rather than holding the server object directly, mirroring
how the original demo's evaluation client uses the MongoDB Java driver.  The
client also aggregates per-operation latencies so callers can obtain a
latency histogram without instrumenting every call site.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.docstore.collection import OperationResult
from repro.docstore.cursor import Cursor
from repro.docstore.documents import clone_document
from repro.docstore.server import DocumentServer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.docstore.sharding.cluster import ShardedCluster


def _read_label(query: dict[str, Any] | None) -> str:
    """Latency label of a read: an empty query is a full ``scan``, everything
    else a ``read`` -- applied uniformly to ``find``/``find_one``/``find_with_cost``."""
    return "scan" if not query else "read"


class CollectionHandle:
    """Client-side handle to a collection; records operation latencies."""

    def __init__(self, client: "DocumentClient", database: str, collection: str):
        self._client = client
        self._database = database
        self._collection = collection

    @property
    def _target(self):
        return self._client.server.database(self._database).collection(self._collection)

    def insert_one(self, document: dict[str, Any]) -> OperationResult:
        return self._record("insert", self._target.insert_one(document))

    def insert_many(self, documents: list[dict[str, Any]]) -> OperationResult:
        return self._record("insert", self._target.insert_many(documents))

    def find_one(self, query: dict[str, Any] | None = None) -> dict[str, Any] | None:
        result = self._target.find_with_cost(query or {}, limit=1)
        self._record(_read_label(query), result)
        if not result.documents:
            return None
        return clone_document(result.documents[0])

    def find(self, query: dict[str, Any] | None = None) -> list[dict[str, Any]]:
        result = self._target.find_with_cost(query or {})
        self._record(_read_label(query), result)
        return [clone_document(document) for document in result.documents]

    def find_with_cost(self, query: dict[str, Any] | None = None,
                       limit: int | None = None) -> OperationResult:
        """Return matching documents together with the simulated cost.

        ``limit`` is pushed down into the query planner (and, on a cluster,
        into every contacted shard), so a limited range scan stops early.
        The returned documents are defensive copies -- the client surface's
        single copy in the copy-on-write protocol.
        """
        result = self._target.find_with_cost(query or {}, limit=limit)
        result.documents = [clone_document(document)
                            for document in result.documents]
        return self._record(_read_label(query), result)

    def find_cursor(self, query: dict[str, Any] | None = None,
                    projection: dict[str, int] | None = None) -> Cursor:
        """A chainable cursor (``sort``/``skip``/``limit``/projection).

        Unlike :meth:`find` (which stays a plain list for compatibility),
        the cursor defers fetching until consumed.  A requested sort is
        routed through the aggregation pipeline, so on any deployment it is
        backed by an ordered index walk when one covers the sort field, and
        a ``limit`` rides down with it.  Returned documents are defensive
        copies, made once by the cursor.
        """
        query = query or {}

        def fetch(limit: int | None = None) -> list[dict[str, Any]]:
            result = self._target.find_with_cost(query, limit=limit)
            self._record(_read_label(query), result)
            return result.documents

        def ordered_fetch(sort_spec: list[tuple[str, int]],
                          limit: int | None) -> list[dict[str, Any]]:
            pipeline: list[dict[str, Any]] = []
            if query:
                pipeline.append({"$match": query})
            pipeline.append({"$sort": dict(sort_spec)})
            if limit is not None:
                pipeline.append({"$limit": limit})
            result = self._target.aggregate(pipeline)
            self._record(_read_label(query), result)
            return result.documents

        return Cursor(fetch, projection, ordered_fetch=ordered_fetch,
                      observer=self._client.cursor_observer())

    def aggregate(self, pipeline: list[dict[str, Any]] | None = None) -> list[dict[str, Any]]:
        """Run an aggregation pipeline; returns defensive copies (like find)."""
        return self.aggregate_with_cost(pipeline).documents

    def aggregate_with_cost(self, pipeline: list[dict[str, Any]] | None = None) -> OperationResult:
        """Like :meth:`aggregate` but returns documents *and* simulated cost."""
        result = self._target.aggregate(pipeline or [])
        result.documents = [clone_document(document)
                            for document in result.documents]
        return self._record("aggregate", result)

    def distinct(self, field_path: str,
                 query: dict[str, Any] | None = None) -> list[Any]:
        """Distinct values of ``field_path``, canonically ordered.

        Values are cloned: distinct surfaces stored (frozen) values, and
        the handle is the copy-on-write protocol's client boundary.
        """
        values = self._target.distinct(field_path, query or {})
        return [clone_document(value) for value in values]

    def explain(self, query: dict[str, Any] | list[dict[str, Any]] | None = None,
                limit: int | None = None) -> dict[str, Any]:
        """The access path (or per-shard paths) ``query`` would use.

        Accepts a plain query document or an aggregation pipeline (a list
        of stages) -- the latter reports per-stage pushdown decisions.
        """
        return self._target.explain(query or {}, limit=limit)

    def update_one(self, query: dict[str, Any], update: dict[str, Any]) -> OperationResult:
        return self._record("update", self._target.update_one(query, update))

    def update_many(self, query: dict[str, Any], update: dict[str, Any]) -> OperationResult:
        return self._record("update", self._target.update_many(query, update))

    def delete_one(self, query: dict[str, Any]) -> OperationResult:
        return self._record("delete", self._target.delete_one(query))

    def delete_many(self, query: dict[str, Any]) -> OperationResult:
        return self._record("delete", self._target.delete_many(query))

    def count_documents(self, query: dict[str, Any] | None = None) -> int:
        return self._target.count_documents(query)

    def create_index(self, field_path: str, unique: bool = False) -> str:
        return self._target.create_index(field_path, unique=unique)

    def stats(self) -> dict[str, Any]:
        return self._target.stats()

    @property
    def engine(self):
        """The storage engine instance backing this collection."""
        return self._target.engine

    def _record(self, operation: str, result: OperationResult) -> OperationResult:
        self._client.record_latency(operation, result.simulated_seconds)
        return result


class DocumentClient:
    """Client connection to one :class:`DocumentServer` or sharded cluster.

    Any deployment exposing the server surface (``database()`` /
    ``run_command()`` / ``drop_database()``) works, in particular
    :class:`~repro.docstore.sharding.cluster.ShardedCluster` -- the cluster's
    routed collections speak the same operation protocol, so the handles
    returned by :meth:`collection` are oblivious to sharding.
    """

    def __init__(self, server: "DocumentServer | ShardedCluster"):
        self.server = server
        self._latencies: dict[str, list[float]] = {}

    def collection(self, database: str, collection: str) -> CollectionHandle:
        """Return a handle to ``database.collection``."""
        return CollectionHandle(self, database, collection)

    def drop_database(self, database: str) -> bool:
        return self.server.drop_database(database)

    def command(self, command: dict[str, Any]) -> dict[str, Any]:
        return self.server.run_command(command)

    # -- observability passthroughs ----------------------------------------------
    #
    # Every deployment type (server, replica set, sharded cluster) exposes
    # the same profiling surface; these passthroughs make it reachable from
    # driver-level code without knowing the topology.

    def set_profiling(self, level: int, slow_ms: float | None = None,
                      capacity: int | None = None) -> dict[str, Any]:
        return self.server.set_profiling(level, slow_ms=slow_ms,
                                         capacity=capacity)

    def slow_ops(self, limit: int | None = None) -> list[dict[str, Any]]:
        return self.server.get_slow_ops(limit)

    def current_ops(self) -> list[dict[str, Any]]:
        return self.server.current_ops()

    def top(self) -> dict[str, Any]:
        return self.server.top()

    def metrics(self) -> dict[str, Any]:
        return self.server.metrics_snapshot()

    def cursor_observer(self) -> Any:
        """A cursor hook recording emitted-document counts into the
        deployment's metrics registry; ``None`` while profiling is off, so
        disabled profiling costs cursors nothing."""
        server = self.server
        profiler = getattr(server, "profiler", None)
        if profiler is None:
            status_member = getattr(server, "status_member", None)
            if status_member is None:
                return None
            profiler = status_member().server.profiler
        if not profiler.enabled:
            return None
        registry = profiler.registry

        def observe(count: int) -> None:
            registry.increment("cursor.open")
            registry.increment("cursor.returned", count)

        return observe

    # -- latency accounting -----------------------------------------------------

    def record_latency(self, operation: str, seconds: float) -> None:
        self._latencies.setdefault(operation, []).append(seconds)

    def latencies(self, operation: str | None = None) -> list[float]:
        """All recorded latencies, optionally filtered by operation type."""
        if operation is not None:
            return list(self._latencies.get(operation, []))
        merged: list[float] = []
        for values in self._latencies.values():
            merged.extend(values)
        return merged

    def reset_latencies(self) -> None:
        self._latencies.clear()

    def operations_recorded(self) -> int:
        return sum(len(values) for values in self._latencies.values())
