"""One member of a replica set: a document server plus replication state.

A :class:`ReplicaSetMember` wraps a plain
:class:`~repro.docstore.server.DocumentServer` -- the same class that backs
standalone deployments and sharded-cluster shards -- and adds what
replication needs to know about it: its role, liveness, the optime it has
applied up to, and a simulated network distance (``ping_seconds``) used by
write-concern waits and ``nearest`` reads.

Members keep their server's ``replication`` attribute up to date, so
``server.run_command({"replSetGetStatus": 1})`` and ``server_status()`` on
the *member's own* server report its role and optime (the introspection
surface tests and agents rely on).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.docstore.cost import CostParameters
from repro.docstore.replication.oplog import ZERO_OPTIME, Oplog, OplogEntry, apply_entry
from repro.docstore.server import DocumentServer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.docstore.replication.oplog import OpTime

ROLE_PRIMARY = "PRIMARY"
ROLE_SECONDARY = "SECONDARY"


class ReplicaSetMember:
    """One ``mongod`` of a replica set."""

    def __init__(self, member_id: int, set_name: str, storage_engine: str,
                 ping_seconds: float = 0.0,
                 cost_parameters: CostParameters | None = None,
                 **engine_options: Any):
        self.member_id = member_id
        self.set_name = set_name
        self.storage_engine = storage_engine
        self.ping_seconds = ping_seconds
        self._cost_parameters = cost_parameters
        self._engine_options = dict(engine_options)
        self.server = self._new_server()
        self.role = ROLE_SECONDARY
        self.up = True
        self.applied: "OpTime" = ZERO_OPTIME
        # Set when this member's data ran ahead of a rolled-back oplog (it
        # was the primary that died with unreplicated writes): incremental
        # catch-up would be wrong, a full resync is required.
        self.needs_resync = False
        self.entries_applied = 0
        self.resyncs = 0
        self.publish_status()

    @property
    def name(self) -> str:
        return f"{self.set_name}/member{self.member_id}"

    # -- replication ------------------------------------------------------------------

    def apply_entries(self, entries: list[OplogEntry]) -> float:
        """Replay ``entries`` (ordered, contiguous tail) onto this member."""
        cost = 0.0
        for entry in entries:
            cost += apply_entry(self.server, entry)
            self.applied = entry.optime
            self.entries_applied += 1
        if entries:
            self.publish_status()
        return cost

    def resync(self, oplog: Oplog) -> float:
        """Initial-sync from scratch: fresh server, full oplog replay.

        This is how a member whose data diverged from the (rolled-back)
        oplog -- or a freshly restarted crashed process -- rebuilds a state
        that is exactly the log's image.
        """
        self.server = self._new_server()
        self.applied = ZERO_OPTIME
        self.entries_applied = 0
        self.needs_resync = False
        self.resyncs += 1
        return self.apply_entries(list(oplog))

    # -- introspection ----------------------------------------------------------------

    def publish_status(self) -> None:
        """Mirror this member's replication view onto its server."""
        self.server.replication = {
            "set": self.set_name,
            "member_id": self.member_id,
            "name": self.name,
            "role": self.role,
            "up": self.up,
            "optime": self.applied.as_list(),
        }

    def status(self, lag_entries: int, partitioned: bool) -> dict[str, Any]:
        """One row of ``replSetGetStatus``."""
        return {
            "member_id": self.member_id,
            "name": self.name,
            "role": self.role,
            "up": self.up,
            "partitioned": partitioned,
            "optime": self.applied.as_list(),
            "lag_entries": lag_entries,
            "ping_ms": self.ping_seconds * 1000.0,
            "entries_applied": self.entries_applied,
            "needs_resync": self.needs_resync,
            "resyncs": self.resyncs,
        }

    # -- internals --------------------------------------------------------------------

    def _new_server(self) -> DocumentServer:
        return DocumentServer(self.storage_engine,
                              cost_parameters=self._cost_parameters,
                              **self._engine_options)

    def __repr__(self) -> str:
        return f"ReplicaSetMember({self.name}, role={self.role}, up={self.up})"
