"""Failure injection for replica sets: kill, restart, partition, heal.

Where :mod:`repro.core.failure` recovers *Chronos jobs* whose agents crash,
this module injects failures into the *System under Evaluation itself*: it
crashes and restarts replica-set members and splits the set into network
partitions mid-workload, so durability/availability trade-offs (write
concern vs data loss, failover time, staleness) become measurable scenarios
rather than hypotheticals.  The injector only flips member state through the
:class:`~repro.docstore.replication.replica_set.ReplicaSet` hooks and keeps
an event log, so every experiment can report exactly what was done to the
deployment.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import DocumentStoreError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.docstore.replication.replica_set import ReplicaSet
    from repro.docstore.sharding.cluster import ShardedCluster


class FailureInjector:
    """Injects member failures into one replica set and logs them."""

    def __init__(self, replica_set: "ReplicaSet"):
        self.replica_set = replica_set
        self.events: list[dict[str, Any]] = []

    @classmethod
    def for_shard(cls, cluster: "ShardedCluster", shard_id: int) -> "FailureInjector":
        """An injector bound to one shard's replica set of a cluster."""
        return cls(cluster.replica_set(shard_id))

    # -- crashes -----------------------------------------------------------------------

    def kill(self, member_id: int) -> None:
        """Crash one member (the primary included -- that's the point)."""
        self.replica_set.kill_member(member_id)
        self._log("kill", member=member_id)

    def kill_primary(self) -> int:
        """Crash the current primary; returns its member id."""
        primary = self.replica_set.primary
        if primary is None:
            raise DocumentStoreError(
                f"replica set {self.replica_set.set_name!r} has no primary to kill"
            )
        self.kill(primary.member_id)
        return primary.member_id

    def restart(self, member_id: int) -> float:
        """Restart a crashed member; returns its catch-up/resync cost."""
        cost = self.replica_set.restart_member(member_id)
        self._log("restart", member=member_id, catch_up_seconds=cost)
        return cost

    def restart_all(self) -> float:
        """Restart every down member."""
        cost = 0.0
        for member in self.replica_set.members:
            if not member.up:
                cost += self.restart(member.member_id)
        return cost

    # -- partitions --------------------------------------------------------------------

    def partition(self, member_ids: list[int] | set[int]) -> None:
        """Split ``member_ids`` away from the rest of the set."""
        self.replica_set.set_partition(set(member_ids))
        self._log("partition", members=sorted(member_ids))

    def partition_primary(self) -> int:
        """Isolate the current primary on the minority side of a split."""
        primary = self.replica_set.primary
        if primary is None:
            raise DocumentStoreError(
                f"replica set {self.replica_set.set_name!r} has no primary "
                f"to partition"
            )
        self.partition({primary.member_id})
        return primary.member_id

    def heal(self) -> float:
        """Heal the partition; returns the rejoin catch-up cost."""
        cost = self.replica_set.heal_partition()
        self._log("heal", catch_up_seconds=cost)
        return cost

    # -- introspection -----------------------------------------------------------------

    def primary_id(self) -> int | None:
        primary = self.replica_set.primary
        return primary.member_id if primary else None

    def _log(self, event: str, **details: Any) -> None:
        self.events.append({"event": event, **details})

    def __repr__(self) -> str:
        return (f"FailureInjector({self.replica_set.set_name!r}, "
                f"events={len(self.events)})")
