"""Replica sets: one primary plus N-1 secondaries behind the server surface.

A :class:`ReplicaSet` mirrors the :class:`~repro.docstore.server.DocumentServer`
surface (``database()`` / ``run_command()`` / ``drop_database()`` /
``server_status()``), so ``DocumentClient(ReplicaSet(members=3))`` works
everywhere a server or a :class:`~repro.docstore.sharding.cluster.ShardedCluster`
does -- evaluation clients, benchmarks and agents gain replication without
code changes.  The ScalienDB shape from the paper's related work maps on
directly: the primary serialises writes into a log that secondaries replay,
with leader election on failure.

How the pieces fit:

* **Writes** go to the primary's real collections.  A change listener on
  those collections captures every post-image into the shared
  :class:`~repro.docstore.replication.oplog.Oplog`; secondaries tail and
  replay it (idempotently).
* **Write concern** -- ``w=1`` acknowledges after the primary applies;
  ``w=k`` / ``w="majority"`` blocks until enough secondaries have applied
  the write's optime, charging the slowest required secondary's network
  round-trip plus apply cost to the operation.
* **Replication lag** -- secondaries not needed for the write concern stay
  up to ``replication_lag`` entries behind, which is what ``secondary``
  reads observe: real eventual consistency, measured in
  ``staleness_samples``.
* **Read preference** -- ``primary`` (consistent), ``secondary``
  (round-robin over secondaries, may be stale), ``nearest`` (lowest ping).
* **Elections** -- when the primary dies or is partitioned from a majority,
  a majority vote among reachable members elects the one with the highest
  applied optime.  Oplog entries the new primary never saw are rolled back
  (``rolled_back_entries``); members whose data ran ahead resync from
  scratch when they rejoin.  With ``auto_elect`` (the standalone default)
  failover is transparent to clients; inside a sharded cluster the
  :class:`~repro.docstore.sharding.router.QueryRouter` drives the election
  and retries instead (``auto_elect=False``).
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Any, Callable

from repro.docstore.collection import Collection, OperationResult
from repro.docstore.cost import CostParameters
from repro.docstore.documents import clone_document
from repro.docstore.replication.member import (
    ROLE_PRIMARY,
    ROLE_SECONDARY,
    ReplicaSetMember,
)
from repro.docstore.replication.oplog import (
    OP_CREATE_INDEX,
    OP_DROP_COLLECTION,
    OP_DROP_DATABASE,
    OP_DROP_INDEX,
    Oplog,
    OpTime,
)
from repro.docstore.observability import (
    MetricsRegistry,
    merge_slow_ops,
    merge_top,
)
from repro.docstore.server import _ENGINE_FACTORIES
from repro.errors import (
    DocumentStoreError,
    NoPrimaryError,
    NotFoundError,
    NotPrimaryError,
    WriteConcernError,
)

WRITE_CONCERN_MAJORITY = "majority"

READ_PRIMARY = "primary"
READ_SECONDARY = "secondary"
READ_NEAREST = "nearest"
READ_PREFERENCES = (READ_PRIMARY, READ_SECONDARY, READ_NEAREST)

DEFAULT_NETWORK_DELAY = 0.00025
DEFAULT_ELECTION_TIMEOUT = 0.01


def resolve_write_concern(write_concern: int | str, member_count: int) -> int:
    """Number of members (primary included) that must acknowledge a write."""
    if write_concern == WRITE_CONCERN_MAJORITY:
        return member_count // 2 + 1
    if isinstance(write_concern, bool) or not isinstance(write_concern, int):
        raise DocumentStoreError(
            f"write concern must be a positive int or 'majority', "
            f"got {write_concern!r}"
        )
    if not 1 <= write_concern <= member_count:
        raise DocumentStoreError(
            f"write concern w={write_concern} is outside 1..{member_count}"
        )
    return write_concern


@dataclass
class ElectionRecord:
    """One election: who won, with how many votes, at what simulated cost."""

    term: int
    winner_id: int
    votes: int
    member_count: int
    rolled_back_entries: int
    simulated_seconds: float

    def as_dict(self) -> dict[str, Any]:
        return {
            "term": self.term,
            "winner": self.winner_id,
            "votes": f"{self.votes}/{self.member_count}",
            "rolled_back_entries": self.rolled_back_entries,
            "simulated_seconds": self.simulated_seconds,
        }


class ReplicatedCollection:
    """The replica-set stand-in for a :class:`Collection`.

    Exposes the operation surface
    :class:`~repro.docstore.client.CollectionHandle` (and the sharding
    router/balancer) expect, routing writes to the primary and reads to the
    member the set's read preference selects.
    """

    def __init__(self, replica_set: "ReplicaSet", database: str, collection: str):
        self.replica_set = replica_set
        self.database = database
        self.name = collection

    # -- writes -----------------------------------------------------------------

    def insert_one(self, document: dict[str, Any]) -> OperationResult:
        return self.replica_set.primary_write(self.database, self.name,
                                              "insert_one", document)

    def insert_many(self, documents: list[dict[str, Any]]) -> OperationResult:
        return self.replica_set.primary_write(self.database, self.name,
                                              "insert_many", documents)

    def update_one(self, query: dict[str, Any], update: dict[str, Any]) -> OperationResult:
        return self.replica_set.primary_write(self.database, self.name,
                                              "update_one", query, update)

    def update_many(self, query: dict[str, Any], update: dict[str, Any]) -> OperationResult:
        return self.replica_set.primary_write(self.database, self.name,
                                              "update_many", query, update)

    def replace_one(self, query: dict[str, Any],
                    replacement: dict[str, Any]) -> OperationResult:
        return self.replica_set.primary_write(self.database, self.name,
                                              "replace_one", query, replacement)

    def delete_one(self, query: dict[str, Any]) -> OperationResult:
        return self.replica_set.primary_write(self.database, self.name,
                                              "delete_one", query)

    def delete_many(self, query: dict[str, Any]) -> OperationResult:
        return self.replica_set.primary_write(self.database, self.name,
                                              "delete_many", query)

    # -- reads ----------------------------------------------------------------------

    def find_with_cost(self, query: dict[str, Any] | None = None,
                       limit: int | None = None) -> OperationResult:
        return self.replica_set.routed_read(self.database, self.name,
                                            "find_with_cost", query or {},
                                            limit=limit)

    def find_one(self, query: dict[str, Any] | None = None) -> dict[str, Any] | None:
        result = self.find_with_cost(query or {}, limit=1)
        if not result.documents:
            return None
        return clone_document(result.documents[0])

    def count_documents(self, query: dict[str, Any] | None = None) -> int:
        member = self.replica_set.read_member()
        collection = self.replica_set.member_collection(member, self.database,
                                                        self.name)
        return collection.count_documents(query or {})

    def aggregate(self, pipeline: list[dict[str, Any]] | None = None) -> OperationResult:
        """Run an aggregation pipeline on the read-preferred member."""
        return self.replica_set.routed_read(self.database, self.name,
                                            "aggregate", pipeline)

    def aggregate_partial(self, prefix: list[dict[str, Any]],
                          group_spec: dict[str, Any]) -> OperationResult:
        """Shard-side partial ``$group`` for replicated shards of a cluster."""
        return self.replica_set.routed_read(self.database, self.name,
                                            "aggregate_partial", prefix,
                                            group_spec)

    def distinct(self, field_path: str,
                 query: dict[str, Any] | None = None) -> list[Any]:
        """Distinct values of ``field_path`` on the read-preferred member."""
        member = self.replica_set.read_member()
        collection = self.replica_set.member_collection(member, self.database,
                                                        self.name)
        return collection.distinct(field_path, query)

    def explain(self, query: dict[str, Any] | None = None,
                limit: int | None = None) -> dict[str, Any]:
        """The serving member's query plan plus which member answered."""
        member = self.replica_set.read_member()
        collection = self.replica_set.member_collection(member, self.database,
                                                        self.name)
        plan = collection.explain(query or {}, limit=limit)
        plan["replication"] = {"member": member.name, "role": member.role,
                               "read_preference": self.replica_set.read_preference}
        return plan

    # -- index management ---------------------------------------------------------------

    def create_index(self, field_path: str, unique: bool = False) -> str:
        return self.replica_set.create_index(self.database, self.name,
                                             field_path, unique=unique)

    def drop_index(self, field_path: str) -> bool:
        return self.replica_set.drop_index(self.database, self.name, field_path)

    # -- statistics ----------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """Primary ``collStats`` plus a replication summary."""
        member = self.replica_set.status_member()
        collection = self.replica_set.member_collection(member, self.database,
                                                        self.name)
        stats = collection.stats()
        stats["replicas"] = self.replica_set.replica_count
        stats["replication"] = self.replica_set.replication_summary()
        return stats

    @property
    def engine(self):
        """The primary's engine (concurrency/name lookups, balancer scans)."""
        primary = self.replica_set.require_primary()
        return self.replica_set.member_collection(
            primary, self.database, self.name).engine

    def __len__(self) -> int:
        return self.count_documents({})

    def __repr__(self) -> str:
        return (f"ReplicatedCollection({self.database}.{self.name}, "
                f"set={self.replica_set.set_name})")


class ReplicatedDatabase:
    """A named database spanning every member of the replica set."""

    def __init__(self, replica_set: "ReplicaSet", name: str):
        self.replica_set = replica_set
        self.name = name

    def collection(self, name: str) -> ReplicatedCollection:
        return ReplicatedCollection(self.replica_set, self.name, name)

    def drop_collection(self, name: str) -> bool:
        return self.replica_set.drop_collection(self.name, name)

    def collection_names(self) -> list[str]:
        member = self.replica_set.status_member()
        if self.name not in member.server.database_names():
            return []
        return member.server.database(self.name).collection_names()

    def stats(self) -> dict[str, Any]:
        member = self.replica_set.status_member()
        stats = member.server.database(self.name).stats()
        stats["replicas"] = self.replica_set.replica_count
        return stats

    def __getitem__(self, name: str) -> ReplicatedCollection:
        return self.collection(name)


class ReplicaSet:
    """N document servers replicating one oplog behind a single surface.

    Args:
        members: total member count (1 primary + ``members - 1`` secondaries).
        storage_engine: engine every member runs.
        set_name: replica-set name (shows up in statuses and member names).
        write_concern: default for every write -- ``1`` .. ``members`` or
            ``"majority"``.
        read_preference: ``"primary"`` / ``"secondary"`` / ``"nearest"``.
        replication_lag: how many oplog entries secondaries not required by
            the write concern may trail behind (eventual consistency window).
        network_delay_seconds: base one-way delay; member pings derive from it.
        election_timeout_seconds: detection+election cost charged on failover.
        auto_elect: elect transparently when the primary is unusable (set
            False inside sharded clusters, where the router drives failover).
        cost_parameters / engine_options: forwarded to every member server.
    """

    def __init__(
        self,
        members: int = 3,
        storage_engine: str = "wiredtiger",
        set_name: str = "rs0",
        write_concern: int | str = 1,
        read_preference: str = READ_PRIMARY,
        replication_lag: int = 0,
        network_delay_seconds: float = DEFAULT_NETWORK_DELAY,
        election_timeout_seconds: float = DEFAULT_ELECTION_TIMEOUT,
        auto_elect: bool = True,
        cost_parameters: CostParameters | None = None,
        **engine_options: Any,
    ):
        if members < 1:
            raise DocumentStoreError("a replica set needs at least one member")
        if read_preference not in READ_PREFERENCES:
            raise DocumentStoreError(
                f"unknown read preference {read_preference!r}; "
                f"supported: {READ_PREFERENCES}"
            )
        if replication_lag < 0:
            raise DocumentStoreError("replication_lag cannot be negative")
        resolve_write_concern(write_concern, members)  # validate early
        self.set_name = set_name
        self.storage_engine = storage_engine
        self.write_concern: int | str = write_concern
        self.read_preference = read_preference
        self.replication_lag = replication_lag
        self.network_delay_seconds = network_delay_seconds
        self.election_timeout_seconds = election_timeout_seconds
        self.auto_elect = auto_elect
        self.members = [
            # Deterministic ping spread with the *last* member closest (1x),
            # the initial primary mid-distance (1.5x) and the rest farther
            # out -- so ``nearest`` genuinely prefers a secondary and its
            # reads observe replication lag like any secondary read.
            ReplicaSetMember(member_id, set_name, storage_engine,
                             ping_seconds=network_delay_seconds
                             * (1 + ((member_id + 1) % 3) / 2),
                             cost_parameters=cost_parameters, **engine_options)
            for member_id in range(members)
        ]
        self.term = 1
        self.oplog = Oplog()
        self.partitioned: set[int] = set()
        self.elections: list[ElectionRecord] = []
        self.failovers = 0
        self.rolled_back_entries = 0
        self.staleness_samples: list[int] = []
        self._primary_id: int | None = 0
        self.members[0].role = ROLE_PRIMARY
        self.members[0].publish_status()
        self._commands_executed = 0
        # The replay flag is per *thread*: it tells the primary's change
        # listener "this write is an oplog replay, do not log it again".
        # A plain bool would leak across threads -- one thread catching up a
        # secondary while another serves a client write would silently drop
        # the client write from the oplog.
        self._replay_state = threading.local()
        self._pending_cost = 0.0
        self._read_cursor = 0
        # Small-state lock for the counters above plus the primary's applied
        # optime: all are read-modify-write hot spots touched from every
        # client thread.
        self._state_lock = threading.Lock()
        # One lock per member serialises oplog application onto it --
        # concurrent catch-ups of the same member would interleave entry
        # batches and double-apply costs.
        self._apply_locks = {member.member_id: threading.Lock()
                             for member in self.members}
        # Elections mutate term, roles, the oplog tail and the primary id as
        # one unit; reentrant because ``step_down``/``require_primary`` call
        # ``elect`` while holding it.
        self._election_lock = threading.RLock()

    # -- membership / roles ---------------------------------------------------------

    @property
    def replica_count(self) -> int:
        return len(self.members)

    @property
    def primary(self) -> ReplicaSetMember | None:
        """The member currently holding the primary role (may be down)."""
        if self._primary_id is None:
            return None
        return self.members[self._primary_id]

    def secondaries(self) -> list[ReplicaSetMember]:
        return [member for member in self.members if member.role != ROLE_PRIMARY]

    def majority(self) -> int:
        return len(self.members) // 2 + 1

    def reachable_members(self) -> list[ReplicaSetMember]:
        """Members that are up and on the majority side of any partition."""
        return [member for member in self.members
                if member.up and member.member_id not in self.partitioned]

    def require_primary(self) -> ReplicaSetMember:
        """The usable primary, electing one first when allowed.

        A primary is usable when it is up, un-partitioned and can see a
        majority.  Otherwise ``auto_elect`` holds an election transparently;
        without it a :class:`NotPrimaryError` asks the caller (the sharded
        query router) to drive the failover.
        """
        member = self.primary
        if self._primary_usable(member):
            return member
        if not self.auto_elect:
            raise NotPrimaryError(
                f"replica set {self.set_name!r} has no usable primary"
            )
        with self._election_lock:
            # Re-check under the lock: another thread noticing the same dead
            # primary may have already elected a replacement, and a second
            # election would needlessly bump the term and roll back its log.
            member = self.primary
            if not self._primary_usable(member):
                self.elect()
            return self.members[self._primary_id]

    def _primary_usable(self, member: ReplicaSetMember | None) -> bool:
        return (
            member is not None
            and member.up
            and member.member_id not in self.partitioned
            and len(self.reachable_members()) >= self.majority()
        )

    def elect(self, exclude_member: int | None = None) -> ElectionRecord:
        """Majority-vote election; the highest-optime reachable member wins.

        Rolls back oplog entries the winner never applied (they lived only
        on the dead primary) and flags members whose data ran ahead of the
        truncated log for resync.  The election's simulated cost is charged
        to the next operation.
        """
        with self._election_lock:
            candidates = [member for member in self.reachable_members()
                          if member.member_id != exclude_member]
            if len(self.reachable_members()) < self.majority() or not candidates:
                self._demote_current_primary()
                self._primary_id = None
                raise NoPrimaryError(
                    f"replica set {self.set_name!r} cannot elect a primary: "
                    f"{len(self.reachable_members())}/{len(self.members)} members "
                    f"reachable, majority is {self.majority()}"
                )
            winner = max(candidates, key=lambda m: (m.applied, -m.member_id))
            self._demote_current_primary()
            self.term += 1
            removed = self.oplog.truncate_after(winner.applied)
            self.rolled_back_entries += len(removed)
            for member in self.members:
                if member.applied > winner.applied:
                    member.needs_resync = True
            winner.role = ROLE_PRIMARY
            winner.publish_status()
            self._primary_id = winner.member_id
            self.failovers += 1
            cost = self.election_timeout_seconds + 2 * self.network_delay_seconds
            with self._state_lock:
                self._pending_cost += cost
            record = ElectionRecord(
                term=self.term,
                winner_id=winner.member_id,
                votes=len(self.reachable_members()),
                member_count=len(self.members),
                rolled_back_entries=len(removed),
                simulated_seconds=cost,
            )
            self.elections.append(record)
            return record

    def step_down(self) -> ElectionRecord:
        """Voluntary ``replSetStepDown``: the primary yields and a new one is
        elected among the *other* members (ties on optime break toward them)."""
        old_primary = self._primary_id
        return self.elect(exclude_member=old_primary)

    def _demote_current_primary(self) -> None:
        if self._primary_id is not None:
            old = self.members[self._primary_id]
            old.role = ROLE_SECONDARY
            old.publish_status()

    # -- failure hooks (driven by the FailureInjector) ---------------------------------

    def kill_member(self, member_id: int) -> None:
        """Crash a member.  A dead primary keeps its role until the next
        operation (or the router) notices and triggers the election -- that
        detection gap is the failover window E11 measures."""
        member = self.members[member_id]
        member.up = False
        member.publish_status()

    def restart_member(self, member_id: int) -> float:
        """Restart a crashed member; it rejoins as a secondary and catches up
        (full resync when its old data ran ahead of a rolled-back oplog)."""
        member = self.members[member_id]
        member.up = True
        if self._primary_id != member.member_id:
            member.role = ROLE_SECONDARY
        member.publish_status()
        return self.catch_up_member(member)

    def set_partition(self, member_ids: set[int]) -> None:
        """Isolate ``member_ids`` on the minority side of a network split."""
        unknown = member_ids - {member.member_id for member in self.members}
        if unknown:
            raise DocumentStoreError(f"unknown member ids {sorted(unknown)}")
        self.partitioned = set(member_ids)

    def heal_partition(self) -> float:
        """Reconnect partitioned members; they catch up (or resync)."""
        healed = self.partitioned
        self.partitioned = set()
        cost = 0.0
        for member_id in sorted(healed):
            member = self.members[member_id]
            if member.role == ROLE_PRIMARY and self._primary_id != member.member_id:
                member.role = ROLE_SECONDARY
                member.publish_status()
            if member.up:
                cost += self.catch_up_member(member)
        return cost

    def catch_up_member(self, member: ReplicaSetMember,
                        target: OpTime | None = None) -> float:
        """Replay the member's oplog tail (or resync when it diverged).

        The per-member apply lock serialises concurrent catch-ups of the
        same member (two write-concern waits can target one secondary); the
        ``member.applied`` read happens under it so each entry is applied
        exactly once.  The replay flag is thread-local: it must suppress
        oplog capture for *this* thread's replay writes only.
        """
        with self._apply_locks[member.member_id]:
            self._replay_state.replaying = True
            try:
                if member.needs_resync:
                    return member.resync(self.oplog)
                entries = self.oplog.entries_after(member.applied, through=target)
                return member.apply_entries(entries)
            finally:
                self._replay_state.replaying = False

    # -- write path --------------------------------------------------------------------

    def primary_write(self, database: str, collection: str, operation: str,
                      *arguments: Any) -> OperationResult:
        """Run a write on the primary, replicate it, honour the write concern."""
        primary = self.require_primary()
        target = self.member_collection(primary, database, collection)
        appended_from = len(self.oplog)
        result: OperationResult = getattr(target, operation)(*arguments)
        result.simulated_seconds += self._finish_write(appended_from)
        result.simulated_seconds += self._take_pending_cost()
        return result

    def create_index(self, database: str, collection: str, field_path: str,
                     unique: bool = False) -> str:
        """Create an index on the primary and replicate it to every member
        (DDL is broadcast eagerly so secondary reads plan like the primary)."""
        primary = self.require_primary()
        target = self.member_collection(primary, database, collection)
        if target.indexes.get(field_path) is None:
            target.create_index(field_path, unique=unique)
        entry = self.oplog.append(self.term, OP_CREATE_INDEX, database, collection,
                                  field_path=field_path, unique=unique)
        self._advance_primary(entry.optime)
        self._replicate_ddl()
        return field_path

    def drop_index(self, database: str, collection: str, field_path: str) -> bool:
        """Drop an index everywhere.  Like every drop, it never *creates* a
        namespace as a side effect (replay on secondaries is guarded the same
        way, keeping all members byte-identical)."""
        primary = self.require_primary()
        dropped = False
        if (database in primary.server.database_names()
                and collection in primary.server.database(database).collection_names()):
            target = self.member_collection(primary, database, collection)
            dropped = target.drop_index(field_path)
        entry = self.oplog.append(self.term, OP_DROP_INDEX, database, collection,
                                  field_path=field_path)
        self._advance_primary(entry.optime)
        self._replicate_ddl()
        return dropped

    def drop_collection(self, database: str, collection: str) -> bool:
        primary = self.require_primary()
        dropped = False
        if database in primary.server.database_names():
            dropped = primary.server.database(database).drop_collection(collection)
        entry = self.oplog.append(self.term, OP_DROP_COLLECTION, database, collection)
        self._advance_primary(entry.optime)
        self._replicate_ddl()
        return dropped

    def drop_database(self, name: str) -> bool:
        primary = self.require_primary()
        dropped = primary.server.drop_database(name)
        entry = self.oplog.append(self.term, OP_DROP_DATABASE, name)
        self._advance_primary(entry.optime)
        self._replicate_ddl()
        return dropped

    def _finish_write(self, appended_from: int) -> float:
        """Post-write replication: ack wait first, then background tailing."""
        entries = self.oplog.entries[appended_from:]
        extra = 0.0
        if entries:
            extra = self._satisfy_write_concern(entries[-1].optime)
        self._background_replicate()
        return extra

    def _satisfy_write_concern(self, target: OpTime) -> float:
        """Block until ``w`` members applied ``target``; returns the wait."""
        needed = resolve_write_concern(self.write_concern, len(self.members)) - 1
        if needed <= 0:
            return 0.0
        candidates = sorted(
            (member for member in self.reachable_members()
             if member.role != ROLE_PRIMARY),
            key=lambda m: (m.ping_seconds, m.member_id),
        )
        if len(candidates) < needed:
            raise WriteConcernError(
                f"write concern w={self.write_concern!r} needs {needed} "
                f"reachable secondaries, only {len(candidates)} available"
            )
        wait = 0.0
        for member in candidates[:needed]:
            apply_cost = self.catch_up_member(member, target)
            wait = max(wait, 2 * member.ping_seconds + apply_cost)
        return wait

    def _background_replicate(self) -> None:
        """Keep reachable secondaries within ``replication_lag`` entries.

        This models the asynchronous tailing that happens off the client's
        critical path, so its apply costs are not charged to any operation.
        """
        entries = self.oplog.entries
        horizon = len(entries) - self.replication_lag
        if horizon <= 0:
            return
        target = entries[horizon - 1].optime
        for member in self.reachable_members():
            if member.role == ROLE_PRIMARY or member.needs_resync:
                continue
            if member.applied < target:
                self.catch_up_member(member, target)

    def _replicate_ddl(self) -> None:
        """Broadcast DDL to every reachable secondary immediately."""
        for member in self.reachable_members():
            if member.role != ROLE_PRIMARY and not member.needs_resync:
                self.catch_up_member(member)

    def _take_pending_cost(self) -> float:
        with self._state_lock:
            cost, self._pending_cost = self._pending_cost, 0.0
        return cost

    # -- read path ---------------------------------------------------------------------

    def read_member(self) -> ReplicaSetMember:
        """The member the configured read preference selects for this read.

        Every read served by a secondary samples the staleness it observes
        (oplog entries the member has not applied yet) into
        ``staleness_samples``.
        """
        member = self._select_read_member()
        if member.role != ROLE_PRIMARY:
            self.staleness_samples.append(self.oplog.lag_behind(member.applied))
        return member

    def _select_read_member(self) -> ReplicaSetMember:
        if self.read_preference == READ_PRIMARY:
            return self.require_primary()
        reachable = self.reachable_members()
        if self.read_preference == READ_NEAREST:
            if not reachable:
                raise NoPrimaryError(
                    f"replica set {self.set_name!r} has no reachable members"
                )
            return min(reachable, key=lambda m: (m.ping_seconds, m.member_id))
        usable = [member for member in reachable
                  if member.role != ROLE_PRIMARY and not member.needs_resync]
        if not usable:
            # No readable secondary left: fall back to the primary (the
            # "secondaryPreferred" behaviour, which keeps workloads running
            # through failovers).
            return self.require_primary()
        with self._state_lock:
            cursor = self._read_cursor
            self._read_cursor += 1
        return usable[cursor % len(usable)]

    def routed_read(self, database: str, collection: str, operation: str,
                    *arguments: Any, **keywords: Any) -> OperationResult:
        """Run a read on the preferred member, sampling observed staleness."""
        member = self.read_member()
        target = self.member_collection(member, database, collection)
        result: OperationResult = getattr(target, operation)(*arguments, **keywords)
        result.simulated_seconds += 2 * member.ping_seconds
        result.simulated_seconds += self._take_pending_cost()
        return result

    # -- member plumbing ---------------------------------------------------------------

    def member_collection(self, member: ReplicaSetMember, database: str,
                          collection: str) -> Collection:
        """The member's physical collection, oplog-instrumented on the primary."""
        physical = member.server.database(database).collection(collection)
        if member.role == ROLE_PRIMARY and physical.change_listener is None:
            physical.change_listener = self._make_listener(database, collection)
        return physical

    def _make_listener(self, database: str, collection: str) -> Callable:
        def listener(operation: str, record_id: str,
                     document: dict[str, Any] | None) -> None:
            if getattr(self._replay_state, "replaying", False):
                return
            # Post-images arriving here are the primary's frozen stored
            # documents (copy-on-write write boundary): safe to log by
            # reference.
            entry = self.oplog.append(self.term, operation, database, collection,
                                      record_id=record_id, document=document,
                                      frozen=True)
            self._advance_primary(entry.optime)
        return listener

    def _advance_primary(self, optime: OpTime) -> None:
        """The primary applies what it writes: its optime tracks the log head.

        Writes on different documents notify concurrently, so the advance is
        a locked monotonic max -- a slow thread carrying an older optime
        must never rewind ``applied`` below a newer write's.
        """
        if self._primary_id is None:
            return
        primary = self.members[self._primary_id]
        with self._state_lock:
            if optime > primary.applied:
                primary.applied = optime
            primary.entries_applied += 1
        primary.publish_status()

    # -- DocumentServer-compatible surface ---------------------------------------------

    def database(self, name: str) -> ReplicatedDatabase:
        return ReplicatedDatabase(self, name)

    def status_member(self) -> ReplicaSetMember:
        """A member for status/introspection reads: the primary when usable,
        otherwise the freshest up member (statuses must not need a primary)."""
        member = self.primary
        if member is not None and member.up:
            return member
        up = [candidate for candidate in self.members if candidate.up]
        if not up:
            return self.members[0]
        return max(up, key=lambda m: (m.applied, -m.member_id))

    def database_names(self) -> list[str]:
        return self.status_member().server.database_names()

    # -- observability -----------------------------------------------------------------

    def set_profiling(self, level: int, slow_ms: float | None = None,
                      capacity: int | None = None) -> dict[str, Any]:
        """Set the profiling level on *every* member (each keeps its own
        slow-op log; :meth:`get_slow_ops` merges them)."""
        result: dict[str, Any] = {}
        for member in self.members:
            result = member.server.set_profiling(level, slow_ms=slow_ms,
                                                 capacity=capacity)
        return result

    def get_slow_ops(self, limit: int | None = None) -> list[dict[str, Any]]:
        """All members' slow-op logs merged, each entry annotated with its
        member name under ``source`` and ordered by start time."""
        return merge_slow_ops(
            ((member.name, member.server.get_slow_ops())
             for member in self.members), limit)

    def current_ops(self) -> list[dict[str, Any]]:
        ops: list[dict[str, Any]] = []
        for member in self.members:
            for entry in member.server.current_ops():
                tagged = dict(entry)
                tagged["source"] = member.name
                ops.append(tagged)
        return ops

    def top(self) -> dict[str, Any]:
        return merge_top([member.server.top() for member in self.members])

    def metrics_snapshot(self) -> dict[str, Any]:
        """Member registries merged (counters and histogram buckets sum),
        plus the set-wide planner rollup and profiler state."""
        merged = MetricsRegistry.merge(
            [member.server.metrics.snapshot() for member in self.members])
        planner = {"entries": 0, "hits": 0, "misses": 0, "fast_id_plans": 0,
                   "collections": 0}
        recorded = 0
        dropped = 0
        for member in self.members:
            rollup = member.server.planner_rollup()
            for key in planner:
                planner[key] += rollup[key]
            recorded += member.server.profiler.slow_ops_recorded
            dropped += member.server.profiler.slow_ops_dropped
        merged["planner"] = planner
        status_profiler = self.status_member().server.profiler
        merged["profiler"] = {
            "level": status_profiler.level,
            "slowms": status_profiler.slow_ms,
            "slow_ops_recorded": recorded,
            "slow_ops_dropped": dropped,
            "members": len(self.members),
        }
        return merged

    def locks_report(self) -> dict[str, dict[str, float]]:
        """Per-namespace lock statistics summed across members."""
        report: dict[str, dict[str, float]] = {}
        for member in self.members:
            for namespace, stats in member.server.locks_report().items():
                slot = report.setdefault(namespace, {})
                for key, value in stats.items():
                    slot[key] = slot.get(key, 0) + value
        return report

    def run_command(self, command: dict[str, Any]) -> dict[str, Any]:
        """The server command subset plus the replica-set commands:
        ``replSetGetStatus``, ``replSetStepDown``, ``isMaster``/``hello``."""
        self._commands_executed += 1
        if "ping" in command:
            return {"ok": 1}
        if "replSetGetStatus" in command:
            return self.replica_set_status()
        if "replSetStepDown" in command:
            record = self.step_down()
            return {"ok": 1, "term": record.term, "primary": record.winner_id}
        if "isMaster" in command or "hello" in command:
            primary = self.primary
            return {
                "ok": 1,
                "ismaster": True,
                "setName": self.set_name,
                "hosts": [member.name for member in self.members],
                "primary": primary.name if primary else None,
            }
        if "buildInfo" in command:
            primary = self.require_primary()
            info = primary.server.run_command({"buildInfo": 1})
            info.update({"replicaSet": self.set_name,
                         "members": len(self.members)})
            return info
        if "serverStatus" in command:
            return {"ok": 1, **self.server_status()}
        if "profile" in command:
            level = command["profile"]
            if level == -1:
                profiler = self.status_member().server.profiler
                return {"ok": 1, "was": profiler.level, "level": profiler.level,
                        "slowms": profiler.slow_ms}
            return {"ok": 1, **self.set_profiling(level,
                                                  slow_ms=command.get("slowms"))}
        if "currentOp" in command:
            return {"ok": 1, "inprog": self.current_ops()}
        if "top" in command:
            return {"ok": 1, "totals": self.top()}
        if "dbStats" in command:
            name = command["dbStats"]
            if name not in self.database_names():
                raise NotFoundError(f"database {name!r} does not exist")
            return {"ok": 1, **self.database(name).stats()}
        if "collStats" in command:
            namespace = command["collStats"]
            db_name, __, coll_name = namespace.partition(".")
            names = self.database(db_name).collection_names()
            if coll_name not in names:
                raise NotFoundError(f"collection {namespace!r} does not exist")
            return {"ok": 1,
                    **self.database(db_name).collection(coll_name).stats()}
        return self.require_primary().server.run_command(command)

    def server_status(self) -> dict[str, Any]:
        """A member's ``serverStatus`` plus set-level replication state."""
        status = self.status_member().server.server_status()
        status["commands"] = self._commands_executed
        status["repl"] = self.replication_summary()
        status["metrics"] = self.metrics_snapshot()
        status["locks"] = self.locks_report()
        return status

    def replica_set_status(self) -> dict[str, Any]:
        """``replSetGetStatus``: per-member roles, optimes and lag."""
        return {
            "ok": 1,
            "set": self.set_name,
            "term": self.term,
            "primary": self._primary_id,
            "write_concern": self.write_concern,
            "read_preference": self.read_preference,
            "oplog_entries": len(self.oplog),
            "failovers": self.failovers,
            "rolled_back_entries": self.rolled_back_entries,
            "members": [
                member.status(
                    lag_entries=self.oplog.lag_behind(member.applied),
                    partitioned=member.member_id in self.partitioned,
                )
                for member in self.members
            ],
        }

    def replication_summary(self) -> dict[str, Any]:
        """The compact replication block embedded in statuses and stats."""
        samples = self.staleness_samples
        return {
            "set": self.set_name,
            "replicas": len(self.members),
            "primary": self._primary_id,
            "term": self.term,
            "write_concern": self.write_concern,
            "read_preference": self.read_preference,
            "replication_lag": self.replication_lag,
            "oplog_entries": len(self.oplog),
            "failovers": self.failovers,
            "elections": [record.as_dict() for record in self.elections],
            "rolled_back_entries": self.rolled_back_entries,
            "staleness_samples": len(samples),
            "staleness_mean": sum(samples) / len(samples) if samples else 0.0,
            "staleness_max": max(samples) if samples else 0,
        }

    def __getitem__(self, name: str) -> ReplicatedDatabase:
        return self.database(name)

    # -- concurrency model ----------------------------------------------------------------

    def speedup(self, threads: int, write_ratio: float) -> float:
        """Throughput speedup for ``threads`` concurrent client threads.

        Writes always serialise on the primary, so ``primary`` reads leave
        the whole set behaving like one server -- and so does ``nearest``,
        which routes every read to the single closest member.  Only
        ``secondary`` reads fan out: they round-robin over the up
        secondaries the way cluster reads spread over shards, capped by the
        thread count.
        """
        profile = _ENGINE_FACTORIES[self.storage_engine].concurrency
        if threads <= 1 or self.read_preference != READ_SECONDARY:
            return profile.speedup(threads, write_ratio)
        readable = max(1, len([member for member in self.members
                               if member.up and member.role != ROLE_PRIMARY]))
        threads_per_member = max(1, math.ceil(threads / readable))
        per_member = profile.speedup(threads_per_member, write_ratio)
        return min(float(threads), per_member * min(readable, threads))

    def __repr__(self) -> str:
        return (f"ReplicaSet({self.set_name!r}, members={len(self.members)}, "
                f"primary={self._primary_id}, engine={self.storage_engine!r})")
