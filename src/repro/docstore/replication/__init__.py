"""Replica sets for the document store: oplog, elections, read/write concern.

This package adds the consistency/availability axis to the document store,
the way MongoDB replica sets do:

* :mod:`~repro.docstore.replication.oplog` -- an append-only, idempotently
  replayable change log with monotonic ``(term, index)`` optimes; the
  primary records post-images, secondaries tail and replay them.
* :mod:`~repro.docstore.replication.member` --
  :class:`~repro.docstore.replication.member.ReplicaSetMember`, one
  :class:`~repro.docstore.server.DocumentServer` plus role, liveness,
  applied optime and simulated ping.
* :mod:`~repro.docstore.replication.replica_set` --
  :class:`~repro.docstore.replication.replica_set.ReplicaSet`, mirroring the
  server surface so ``DocumentClient(ReplicaSet(members=3))`` works wherever
  a server did, with configurable write concern (``1`` .. ``n`` /
  ``"majority"``), read preference (``primary``/``secondary``/``nearest``),
  replication lag and majority-vote elections with rollback.
* :mod:`~repro.docstore.replication.failures` --
  :class:`~repro.docstore.replication.failures.FailureInjector`, which
  kills/restarts/partitions members mid-workload.

``ShardedCluster(shards=N, replicas=M)`` runs a replica set per shard, with
the query router driving elections and retrying operations on failover.
"""

from repro.docstore.replication.failures import FailureInjector
from repro.docstore.replication.member import (
    ROLE_PRIMARY,
    ROLE_SECONDARY,
    ReplicaSetMember,
)
from repro.docstore.replication.oplog import (
    OP_CREATE_INDEX,
    OP_DELETE,
    OP_DROP_COLLECTION,
    OP_DROP_DATABASE,
    OP_DROP_INDEX,
    OP_INSERT,
    OP_NOOP,
    OP_UPDATE,
    ZERO_OPTIME,
    Oplog,
    OplogEntry,
    OpTime,
    apply_entry,
)
from repro.docstore.replication.replica_set import (
    READ_NEAREST,
    READ_PREFERENCES,
    READ_PRIMARY,
    READ_SECONDARY,
    WRITE_CONCERN_MAJORITY,
    ElectionRecord,
    ReplicaSet,
    ReplicatedCollection,
    ReplicatedDatabase,
    resolve_write_concern,
)

__all__ = [
    "Oplog",
    "OplogEntry",
    "OpTime",
    "ZERO_OPTIME",
    "apply_entry",
    "OP_INSERT",
    "OP_UPDATE",
    "OP_DELETE",
    "OP_CREATE_INDEX",
    "OP_DROP_INDEX",
    "OP_DROP_COLLECTION",
    "OP_DROP_DATABASE",
    "OP_NOOP",
    "ReplicaSetMember",
    "ROLE_PRIMARY",
    "ROLE_SECONDARY",
    "ReplicaSet",
    "ReplicatedCollection",
    "ReplicatedDatabase",
    "ElectionRecord",
    "resolve_write_concern",
    "WRITE_CONCERN_MAJORITY",
    "READ_PRIMARY",
    "READ_SECONDARY",
    "READ_NEAREST",
    "READ_PREFERENCES",
    "FailureInjector",
]
