"""The replication oplog: an append-only, idempotently replayable change log.

The primary of a :class:`~repro.docstore.replication.replica_set.ReplicaSet`
records every document change as an :class:`OplogEntry`; secondaries tail the
log and replay entries onto their own :class:`~repro.docstore.server.DocumentServer`.

Two properties make the design safe to replay at any point of a secondary's
life, which is what makes lag, catch-up, restart-resync and rollback simple:

* **Monotonic optimes.**  Every entry carries an :class:`OpTime`
  ``(term, index)``.  The term bumps on every election, so entries written by
  a new primary always order after everything the old primary wrote -- even
  after a rollback truncated the tail of the log.
* **Idempotent entries.**  CRUD entries store the *effect*, not the command:
  inserts and updates carry the full post-image and replay as "put this exact
  document at this ``_id``", deletes as "ensure this ``_id`` is gone".
  Re-applying an entry (or a whole batch, in order) leaves the data
  unchanged, so a secondary that replays overlapping windows converges to
  the same state.  Updates of existing documents replay in place
  (:meth:`Collection.replace_one`), preserving the engine's insertion order
  so a promoted secondary scans documents in the same order its old primary
  did.

DDL changes (index create/drop, collection/database drops) are logged too so
that a full replay from an empty server reconstructs a member exactly.
"""

from __future__ import annotations

import bisect
import copy
import threading
from dataclasses import dataclass, field
from functools import total_ordering
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import DocumentStoreError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.docstore.server import DocumentServer

OP_INSERT = "insert"
OP_UPDATE = "update"
OP_DELETE = "delete"
OP_CREATE_INDEX = "create_index"
OP_DROP_INDEX = "drop_index"
OP_DROP_COLLECTION = "drop_collection"
OP_DROP_DATABASE = "drop_database"
OP_NOOP = "noop"

_DOCUMENT_OPS = (OP_INSERT, OP_UPDATE, OP_DELETE)


@total_ordering
@dataclass(frozen=True)
class OpTime:
    """A replication timestamp: election term plus log position."""

    term: int = 0
    index: int = 0

    def as_list(self) -> list[int]:
        """JSON-friendly ``[term, index]`` form (for statuses and tests)."""
        return [self.term, self.index]

    def _key(self) -> tuple[int, int]:
        return (self.term, self.index)

    def __lt__(self, other: "OpTime") -> bool:
        return self._key() < other._key()


ZERO_OPTIME = OpTime(0, 0)


@dataclass(frozen=True)
class OplogEntry:
    """One idempotent change: a document post-image, a delete, or DDL."""

    optime: OpTime
    operation: str
    database: str
    collection: str = ""
    record_id: str | None = None
    document: dict[str, Any] | None = None
    field_path: str | None = None
    unique: bool = False

    def as_dict(self) -> dict[str, Any]:
        return {
            "optime": self.optime.as_list(),
            "operation": self.operation,
            "namespace": f"{self.database}.{self.collection}".rstrip("."),
            "record_id": self.record_id,
        }


@dataclass
class Oplog:
    """The replica set's single authoritative, append-only change log.

    ``truncate_after`` models rollback at failover: entries the new primary
    never applied are removed (and counted by the replica set as lost
    acknowledged writes when the write concern allowed that).
    """

    _entries: list[OplogEntry] = field(default_factory=list)
    _next_index: int = 1

    def __post_init__(self) -> None:
        # Serialises optime allocation + append: two concurrent primary
        # writes interleaving ``_next_index`` reads would mint duplicate
        # optimes, and an entry appended between another's stamp and append
        # would put the log out of optime order -- both break the
        # idempotent-replay guarantee.
        self._append_lock = threading.Lock()

    def append(self, term: int, operation: str, database: str, collection: str = "",
               record_id: str | None = None, document: dict[str, Any] | None = None,
               field_path: str | None = None, unique: bool = False,
               frozen: bool = False) -> OplogEntry:
        """Stamp the next optime onto a change and append it (atomically).

        ``frozen=True`` declares that ``document`` is a canonical stored
        post-image from the copy-on-write write boundary -- an object that is
        never mutated in place -- so the log can hold the reference directly.
        Arbitrary caller documents (the default) are still deep-copied so
        later mutations can never retroactively change what secondaries
        replay.
        """
        if operation in _DOCUMENT_OPS and record_id is None:
            raise DocumentStoreError(f"oplog {operation} entries need a record_id")
        payload = document if frozen else copy.deepcopy(document)
        with self._append_lock:
            entry = OplogEntry(
                optime=OpTime(term, self._next_index),
                operation=operation,
                database=database,
                collection=collection,
                record_id=record_id,
                document=payload,
                field_path=field_path,
                unique=unique,
            )
            if self._entries:
                last = self._entries[-1].optime
                assert entry.optime > last, (
                    f"non-monotonic oplog optime: {entry.optime} after {last}"
                )
            self._next_index += 1
            self._entries.append(entry)
        return entry

    @property
    def entries(self) -> list[OplogEntry]:
        return self._entries

    def last_optime(self) -> OpTime:
        return self._entries[-1].optime if self._entries else ZERO_OPTIME

    def _position_after(self, optime: OpTime) -> int:
        """Index of the first entry ordered after ``optime`` (binary search;
        entry optimes are strictly increasing by construction)."""
        return bisect.bisect_right(self._entries, optime,
                                   key=lambda entry: entry.optime)

    def entries_after(self, optime: OpTime,
                      through: OpTime | None = None) -> list[OplogEntry]:
        """The tail strictly after ``optime`` (clipped at ``through`` when
        given) -- what a secondary replays to catch up."""
        start = self._position_after(optime)
        if through is None:
            return self._entries[start:]
        return self._entries[start:self._position_after(through)]

    def lag_behind(self, optime: OpTime) -> int:
        """How many entries trail ``optime`` -- a member's staleness, O(log n)."""
        return len(self._entries) - self._position_after(optime)

    def truncate_after(self, optime: OpTime) -> list[OplogEntry]:
        """Drop (and return) every entry after ``optime`` -- failover rollback.

        Takes the append lock so a write racing the rollback cannot append to
        the list being replaced and silently vanish.
        """
        with self._append_lock:
            cut = self._position_after(optime)
            removed = self._entries[cut:]
            self._entries = self._entries[:cut]
        return removed

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[OplogEntry]:
        return iter(self._entries)


def apply_entry(server: "DocumentServer", entry: OplogEntry) -> float:
    """Replay one entry onto ``server`` idempotently; returns simulated cost.

    Inserts and updates converge to "``record_id`` holds exactly this
    post-image" (replacing in place when present so engine scan order matches
    the primary's); deletes to "``record_id`` is absent".  DDL entries are
    no-ops when their effect already holds.
    """
    if entry.operation == OP_NOOP:
        return 0.0
    if entry.operation == OP_DROP_DATABASE:
        server.drop_database(entry.database)
        return 0.0
    if entry.operation in (OP_DROP_COLLECTION, OP_DROP_INDEX):
        # Drops of namespaces this member never saw must stay no-ops:
        # ``server.database()`` creates on access, and a phantom empty
        # namespace would make ``database_names()`` diverge from the primary.
        if entry.database not in server.database_names():
            return 0.0
        database = server.database(entry.database)
        if entry.collection not in database.collection_names():
            return 0.0
        if entry.operation == OP_DROP_COLLECTION:
            database.drop_collection(entry.collection)
        else:
            database.collection(entry.collection).drop_index(entry.field_path)
        return 0.0
    collection = server.database(entry.database).collection(entry.collection)
    if entry.operation == OP_CREATE_INDEX:
        if collection.indexes.get(entry.field_path) is None:
            collection.create_index(entry.field_path, unique=entry.unique)
        return 0.0
    if entry.operation in (OP_INSERT, OP_UPDATE):
        # The member's write boundary freezes (copies) the post-image before
        # storing it, so the entry can be handed over by reference.
        if entry.record_id in collection.record_ids():
            return collection.replace_one(
                {"_id": entry.record_id}, entry.document).simulated_seconds
        return collection.insert_one(entry.document).simulated_seconds
    if entry.operation == OP_DELETE:
        if entry.record_id in collection.record_ids():
            return collection.delete_one({"_id": entry.record_id}).simulated_seconds
        return 0.0
    raise DocumentStoreError(f"unknown oplog operation {entry.operation!r}")
