"""Secondary indexes over document fields.

Two index shapes live here:

* :class:`SecondaryIndex` -- a hash index mapping a dotted field path's value
  to the set of record ids carrying it; answers equality lookups only.
* :class:`OrderedSecondaryIndex` -- the catalog's default since the query
  planner landed: the hash entries plus a :class:`~repro.docstore.btree.BTree`
  keyed by ``(type rank, value)`` over scalar values, so range predicates
  become ordered ``tree.range()`` scans instead of full collection scans.
  It is also *multikey* like MongoDB's indexes: a document whose indexed
  value is an array is additionally indexed under each scalar element, which
  makes equality lookups agree exactly with the array-matching semantics of
  :func:`repro.docstore.matching.matches`.

The collection consults indexes through the query planner and maintains them
on every write; engines charge index-maintenance cost per affected index so
the two storage engines stay comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.docstore.btree import BTree
from repro.docstore.documents import get_path
from repro.docstore.predicates import Interval, ordered_key, scalar_rank
from repro.errors import DuplicateKeyError


def _hashable(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_hashable(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((key, _hashable(item)) for key, item in value.items()))
    return value


@dataclass
class SecondaryIndex:
    """An equality (hash) index on one dotted field path."""

    field_path: str
    unique: bool = False
    _entries: dict[Any, set[str]] = field(default_factory=dict, repr=False)

    def add(self, record_id: str, document: dict[str, Any]) -> None:
        found, value = get_path(document, self.field_path)
        if not found:
            return
        keys = self._index_keys(value)
        if self.unique:
            for key in keys:
                bucket = self._entries.get(key)
                if bucket and record_id not in bucket:
                    raise DuplicateKeyError(
                        f"duplicate value {value!r} for unique index on "
                        f"{self.field_path!r}"
                    )
        for key in keys:
            self._entries.setdefault(key, set()).add(record_id)

    def remove(self, record_id: str, document: dict[str, Any]) -> None:
        found, value = get_path(document, self.field_path)
        if not found:
            return
        for key in self._index_keys(value):
            bucket = self._entries.get(key)
            if bucket is None:
                continue
            bucket.discard(record_id)
            if not bucket:
                del self._entries[key]
                self._drop_ordered_entry(key)

    def lookup(self, value: Any) -> set[str]:
        """Record ids whose indexed field equals (or array-contains) ``value``."""
        return set(self._entries.get(_hashable(value), set()))

    def _index_keys(self, value: Any) -> list[Any]:
        """The hash keys one document value is indexed under."""
        return [_hashable(value)]

    def _drop_ordered_entry(self, key: Any) -> None:
        """Hook for ordered subclasses: an entry bucket just emptied."""

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._entries.values())


@dataclass
class OrderedSecondaryIndex(SecondaryIndex):
    """A multikey hash index plus a B-tree over scalar values for range scans.

    The tree maps ``ordered_key(value)`` (a ``(type rank, value)`` composite,
    so mixed-type collections stay sortable) to the *same* record-id bucket
    the hash entries hold for that value.  Non-scalar values (arrays, sub
    documents) live only in the hash entries: range predicates never match
    them (see ``matching._comparable``), so the tree does not need them.
    """

    _tree: BTree = field(default_factory=lambda: BTree(order=32), repr=False)
    # Number of live documents whose *whole* indexed value is a scalar (one
    # tree entry per document).  When this equals the collection's document
    # count, an in-order tree walk visits every document exactly once -- the
    # coverage condition under which the aggregation pipeline turns a
    # ``$sort`` on this field into an ordered index walk.
    _ordered_count: int = 0

    def add(self, record_id: str, document: dict[str, Any]) -> None:
        found, value = get_path(document, self.field_path)
        # Membership is probed before the (possibly failing) unique check so
        # the counter only moves when this call actually adds the record.
        counted = (found and scalar_rank(value) is not None
                   and record_id not in self._entries.get(_hashable(value), ()))
        super().add(record_id, document)
        if not found:
            return
        for key in self._index_keys(value):
            if scalar_rank(key) is not None:
                self._tree.insert(ordered_key(key), self._entries[key])
        if counted:
            self._ordered_count += 1

    def remove(self, record_id: str, document: dict[str, Any]) -> None:
        found, value = get_path(document, self.field_path)
        counted = (found and scalar_rank(value) is not None
                   and record_id in self._entries.get(_hashable(value), ()))
        super().remove(record_id, document)
        if counted:
            self._ordered_count -= 1

    def ordered_records(self) -> int:
        """Live documents represented by exactly one scalar tree entry."""
        return self._ordered_count

    def iter_ordered(self) -> "Iterator[str]":
        """All record ids in ascending indexed-value order.

        The full-tree analogue of :meth:`iter_range`: one in-order walk over
        every type rank, streaming deduplicated ids in ``(value, record id)``
        order so a limited consumer can stop early.
        """
        seen: set[str] = set()
        # Keys are (rank, value) composites with ranks 0..3; (0,) sorts
        # before every real key and (4,) after, so this covers the tree.
        for __, bucket in self._tree.range((0,), (4,)):
            for record_id in sorted(bucket):
                if record_id not in seen:
                    seen.add(record_id)
                    yield record_id

    def iter_range(self, interval: Interval) -> "Iterator[str]":
        """Lazily yield record ids whose indexed value may lie in ``interval``.

        Ids stream in ``(value, record id)`` order -- the index key order --
        and are deduplicated, so a limited consumer can stop after a handful
        of entries without walking the rest of the window.  The stream
        over-approximates for multikey entries; callers re-check candidates
        with ``matches()``.
        """
        rank = interval.rank
        if rank is None:
            return
        low_key = (rank, interval.low) if interval.low is not None else (rank,)
        high_key = (rank, interval.high) if interval.high is not None else (rank + 1,)
        seen: set[str] = set()
        for key, bucket in self._tree.range(low_key, high_key):
            if not interval.contains(key[1]):
                continue
            for record_id in sorted(bucket):
                if record_id not in seen:
                    seen.add(record_id)
                    yield record_id

    def range_scan(self, interval: Interval) -> tuple[list[str], int]:
        """Materialised :meth:`iter_range`: ``(ids, B-tree nodes visited)``."""
        before = self._tree.node_accesses
        ids = list(self.iter_range(interval))
        return ids, self._tree.node_accesses - before

    def tree_node_accesses(self) -> int:
        """Cumulative B-tree node-access counter (planner cost accounting)."""
        return self._tree.node_accesses

    def tree_depth(self) -> int:
        return self._tree.depth()

    def _index_keys(self, value: Any) -> list[Any]:
        keys = [_hashable(value)]
        if isinstance(value, list):
            # Multikey: index scalar array elements individually so equality
            # lookups see the same documents array matching does.
            keys.extend(element for element in value
                        if not isinstance(element, (list, dict)))
        return list(dict.fromkeys(keys))

    def _drop_ordered_entry(self, key: Any) -> None:
        if scalar_rank(key) is not None:
            self._tree.delete(ordered_key(key))


class IndexCatalog:
    """All secondary indexes of one collection."""

    def __init__(self) -> None:
        self._indexes: dict[str, SecondaryIndex] = {}

    def create(self, field_path: str, unique: bool = False) -> SecondaryIndex:
        """Create (or return the existing) ordered index on ``field_path``."""
        if field_path in self._indexes:
            return self._indexes[field_path]
        index = OrderedSecondaryIndex(field_path, unique=unique)
        self._indexes[field_path] = index
        return index

    def drop(self, field_path: str) -> bool:
        return self._indexes.pop(field_path, None) is not None

    def get(self, field_path: str) -> SecondaryIndex | None:
        return self._indexes.get(field_path)

    def names(self) -> list[str]:
        return sorted(self._indexes)

    def __len__(self) -> int:
        return len(self._indexes)

    def __iter__(self):
        return iter(self._indexes.values())

    def add_document(self, record_id: str, document: dict[str, Any]) -> None:
        for index in self._indexes.values():
            index.add(record_id, document)

    def remove_document(self, record_id: str, document: dict[str, Any]) -> None:
        for index in self._indexes.values():
            index.remove(record_id, document)
