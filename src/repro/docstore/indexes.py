"""Secondary indexes over document fields.

Indexes map a dotted field path's value to the set of record ids carrying
that value.  The collection consults them for equality predicates and
maintains them on every write; engines charge index-maintenance cost per
affected index so the two storage engines stay comparable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.docstore.documents import get_path
from repro.errors import DuplicateKeyError


def _hashable(value: Any) -> Any:
    if isinstance(value, list):
        return tuple(_hashable(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((key, _hashable(item)) for key, item in value.items()))
    return value


@dataclass
class SecondaryIndex:
    """An equality index on one dotted field path."""

    field_path: str
    unique: bool = False
    _entries: dict[Any, set[str]] = field(default_factory=dict, repr=False)

    def add(self, record_id: str, document: dict[str, Any]) -> None:
        found, value = get_path(document, self.field_path)
        if not found:
            return
        key = _hashable(value)
        bucket = self._entries.setdefault(key, set())
        if self.unique and bucket and record_id not in bucket:
            raise DuplicateKeyError(
                f"duplicate value {value!r} for unique index on {self.field_path!r}"
            )
        bucket.add(record_id)

    def remove(self, record_id: str, document: dict[str, Any]) -> None:
        found, value = get_path(document, self.field_path)
        if not found:
            return
        key = _hashable(value)
        bucket = self._entries.get(key)
        if bucket is None:
            return
        bucket.discard(record_id)
        if not bucket:
            del self._entries[key]

    def lookup(self, value: Any) -> set[str]:
        """Record ids whose indexed field equals ``value``."""
        return set(self._entries.get(_hashable(value), set()))

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._entries.values())


class IndexCatalog:
    """All secondary indexes of one collection."""

    def __init__(self) -> None:
        self._indexes: dict[str, SecondaryIndex] = {}

    def create(self, field_path: str, unique: bool = False) -> SecondaryIndex:
        """Create (or return the existing) index on ``field_path``."""
        if field_path in self._indexes:
            return self._indexes[field_path]
        index = SecondaryIndex(field_path, unique=unique)
        self._indexes[field_path] = index
        return index

    def drop(self, field_path: str) -> bool:
        return self._indexes.pop(field_path, None) is not None

    def get(self, field_path: str) -> SecondaryIndex | None:
        return self._indexes.get(field_path)

    def names(self) -> list[str]:
        return sorted(self._indexes)

    def __len__(self) -> int:
        return len(self._indexes)

    def __iter__(self):
        return iter(self._indexes.values())

    def add_document(self, record_id: str, document: dict[str, Any]) -> None:
        for index in self._indexes.values():
            index.add(record_id, document)

    def remove_document(self, record_id: str, document: dict[str, Any]) -> None:
        for index in self._indexes.values():
            index.remove(record_id, document)
