"""The query planner: choosing an access path for every collection read.

The planner replaces the old ``Collection._candidates`` heuristic.  For a
query it enumerates the applicable access paths, estimates each one's
simulated cost from the engine's :class:`~repro.docstore.cost.CostParameters`,
and picks the cheapest:

* ``ID_LOOKUP``    -- the query pins ``_id`` to one value: direct record fetch.
* ``INDEX_EQ``     -- an indexed field is pinned to one or more point values
  (``$eq`` / ``$in``): hash-index lookups.
* ``INDEX_RANGE``  -- an indexed field is range-constrained (``$gt``/``$gte``/
  ``$lt``/``$lte``): an ordered ``tree.range()`` scan over the index B-tree.
* ``FULL_SCAN``    -- no usable index: every document is examined.

Candidate sets are always supersets of the true matches (the predicate
analysis over-approximates); the caller re-checks every candidate with the
plan's compiled matcher, so planning never changes *what* a query returns,
only how many documents it examines and what the operation costs.

**Plan cache.**  Repeated operations (the YCSB mixes) issue the same query
*shapes* with different operand values.  :func:`~repro.docstore.matching.query_shape`
derives a hashable key capturing everything the decision depends on
(structure, operators, operand type ranks); the planner caches
``(shape, limit) -> access-path decision + compiled matcher`` and, on a hit,
rebuilds only the winning plan's concrete candidates and re-binds the cached
matcher to the new operand values -- no re-enumeration of alternatives, no
re-compilation, no re-costing of losing paths.  Entries are invalidated on
index DDL and whenever the collection's document count leaves the power-of-two
bucket the decision was made in (growth can flip a scan/index choice).
Correctness never depends on the cache: candidates are re-checked, so a stale
decision can only cost simulated time, exactly like a stale plan cache entry
on a real server.

``explain()`` always plans cold (and surfaces the decision -- the winning
plan plus every considered alternative with its estimated cost) through
``Collection.explain`` / ``DocumentClient`` handles and the ``repro
explain`` CLI subcommand.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.docstore.indexes import OrderedSecondaryIndex
from repro.docstore.matching import (
    CompiledQuery,
    Matcher,
    compile_shape,
    equality_value,
    query_shape,
)
from repro.docstore.predicates import IntervalSet, query_intervals

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.docstore.collection import Collection

ID_LOOKUP = "ID_LOOKUP"
INDEX_EQ = "INDEX_EQ"
INDEX_RANGE = "INDEX_RANGE"
FULL_SCAN = "FULL_SCAN"

ACCESS_PATHS = (ID_LOOKUP, INDEX_EQ, INDEX_RANGE, FULL_SCAN)

_PLAN_CACHE_LIMIT = 128


@dataclass(slots=True)
class QueryPlan:
    """One chosen access path plus the bookkeeping ``explain`` exposes.

    ``ID_LOOKUP`` / ``INDEX_EQ`` / ``FULL_SCAN`` plans carry a materialised
    ``candidate_ids`` list.  ``INDEX_RANGE`` plans are *lazy*: candidates
    stream from the index B-tree in ``(value, record id)`` order, so a
    limited executor walks only as much of the window as it needs, and the
    lookup cost accrues with the walk (``current_lookup_cost``).

    Attributes:
        access_path: one of :data:`ACCESS_PATHS`.
        field: the field path driving the access (None for full scans).
        estimated_cost: the planner's total cost estimate for the path.
        candidate_ids: record ids the executor will examine (None while a
            lazy plan is unmaterialised).
        lookup_cost: simulated cost incurred finding the candidates
            (index traversal / full-scan enumeration).
        considered: summaries of every path that was costed (the winner only
            when the plan came from the cache).
        matcher: the compiled query matcher the executor re-checks candidates
            with (None when ``exact`` makes re-checking unnecessary).
        exact: True when the candidate set provably equals the match set
            (an empty query matching everything), letting executors skip
            per-document matching entirely.
    """

    access_path: str
    field: str | None
    estimated_cost: float
    candidate_ids: list[str] | None = None
    lookup_cost: float = 0.0
    considered: list[dict[str, Any]] = field(default_factory=list)
    lazy_candidates: Callable[[], Iterator[str]] | None = None
    lazy_lookup_cost: Callable[[], float] | None = None
    matcher: Callable[[dict[str, Any]], bool] | None = None
    exact: bool = False
    cache_state: str = "cold"

    def iter_candidates(self) -> Iterator[str]:
        if self.candidate_ids is not None:
            return iter(self.candidate_ids)
        return self.lazy_candidates()

    def current_lookup_cost(self) -> float:
        """The lookup cost charged so far (grows as a lazy plan is consumed)."""
        if self.lazy_lookup_cost is not None:
            return self.lazy_lookup_cost()
        return self.lookup_cost

    def materialize(self) -> list[str]:
        """Force a lazy plan's full candidate list (used by ``explain``)."""
        if self.candidate_ids is None:
            self.candidate_ids = list(self.lazy_candidates())
            self.lookup_cost = self.current_lookup_cost()
        return self.candidate_ids

    def summary(self) -> dict[str, Any]:
        return {
            "access_path": self.access_path,
            "field": self.field,
            "candidates_examined": (len(self.candidate_ids)
                                    if self.candidate_ids is not None else None),
            "estimated_cost": self.estimated_cost,
        }


@dataclass
class _PlanTemplate:
    """A cached planning decision for one query shape."""

    access_path: str
    field: str | None
    compiled: CompiledQuery
    count_bucket: int


class QueryPlanner:
    """Plans every read of one :class:`~repro.docstore.collection.Collection`."""

    def __init__(self, collection: "Collection"):
        self.collection = collection
        self._cache: dict[tuple[Any, int | None], _PlanTemplate] = {}
        self.cache_hits = 0
        self.cache_misses = 0
        self.fast_id_plans = 0
        # Guards the cache dict and the hit/miss counters: concurrent finds
        # otherwise interleave lookup, insertion, overflow-clear and counter
        # read-modify-writes.  Templates themselves are immutable once
        # published (rebinding builds a fresh Matcher per plan), so holding
        # the lock only around cache/counter access is sufficient.
        self._cache_lock = threading.Lock()

    # -- planning ---------------------------------------------------------------

    def plan(self, query: dict[str, Any], limit: int | None = None,
             use_cache: bool = True) -> QueryPlan:
        """Choose and materialise the cheapest access path for ``query``.

        ``limit`` caps the estimated number of candidate reads (the executor
        stops after ``limit`` matches), which lets short range scans beat a
        full scan even on large collections.  ``use_cache=False`` forces a
        cold plan without consulting or refreshing the plan cache
        (``explain`` uses it so its output always reflects current costs).
        """
        query = query or {}
        if not query:
            # An empty query matches every document: full scan, no re-check.
            plan = QueryPlan(FULL_SCAN, None, self._full_scan_estimate(limit),
                             exact=True, cache_state="exact")
            plan.candidate_ids, plan.lookup_cost = self._scan_candidates()
            plan.considered = [plan.summary()]
            return plan

        if use_cache and len(query) == 1:
            # The YCSB-dominant point read ``{"_id": <string>}`` skips shape
            # derivation, template lookup and matching entirely.  Only taken
            # when the candidate provably is the match (all-string-id
            # collection); anything else uses the cached-template path, which
            # re-binds a compiled matcher instead of recompiling.
            condition = query.get("_id")
            if type(condition) is str and not self.collection.has_non_string_ids():
                return self._fast_id_plan(condition)

        shape, params = query_shape(query)
        key = (shape, limit)
        if use_cache:
            with self._cache_lock:
                template = self._cache.get(key)
            if template is not None:
                # Rebinding runs outside the lock (it reads engine state and
                # builds the concrete plan); the template is immutable, so a
                # concurrent eviction/replacement of the cache slot is safe.
                plan = self._plan_from_template(template, query, params, limit)
                if plan is not None:
                    plan.cache_state = "hit"
                    with self._cache_lock:
                        self.cache_hits += 1
                    return plan
                with self._cache_lock:
                    # index dropped / decision went stale
                    self._cache.pop(key, None)
                    self.cache_misses += 1
            else:
                with self._cache_lock:
                    self.cache_misses += 1
        plan, template = self._cold_plan(query, params, limit)
        if use_cache:
            plan.cache_state = "miss"
            with self._cache_lock:
                if len(self._cache) >= _PLAN_CACHE_LIMIT:
                    self._cache.clear()
                self._cache[key] = template
        return plan

    def invalidate_cache(self) -> None:
        """Drop every cached decision (index DDL changes what is plannable)."""
        with self._cache_lock:
            self._cache.clear()

    def cache_stats(self) -> dict[str, int]:
        """Cache effectiveness counters (``fast_id_plans`` are the sole-
        ``{"_id": <scalar>}`` reads that skip both cache and compilation)."""
        with self._cache_lock:
            return {"entries": len(self._cache), "hits": self.cache_hits,
                    "misses": self.cache_misses,
                    "fast_id_plans": self.fast_id_plans}

    def explain(self, query: dict[str, Any] | None = None,
                limit: int | None = None) -> dict[str, Any]:
        """A MongoDB-``explain``-style description of how ``query`` would run.

        Note that explain materialises the winning plan's candidate set (for
        a winning full scan that enumerates the collection), so it charges
        the same simulated lookup costs the real query would.  It always
        plans cold: the output reflects current data, not a cached decision.
        """
        plan = self.plan(query or {}, limit=limit, use_cache=False)
        plan.materialize()
        winning = plan.summary()
        winning["lookup_cost"] = plan.lookup_cost
        considered = [
            plan.summary() if (entry["access_path"] == plan.access_path
                               and entry["field"] == plan.field) else entry
            for entry in plan.considered
        ]
        return {
            "collection": self.collection.name,
            "documents": self.collection.engine.count(),
            "query": query or {},
            "limit": limit,
            "winning_plan": winning,
            "considered_plans": considered,
        }

    # -- internals ---------------------------------------------------------------

    def _count_bucket(self) -> int:
        return self.collection.engine.count().bit_length()

    def _fast_id_plan(self, value: str) -> QueryPlan:
        """The dedicated plan for a sole ``{"_id": <string>}`` predicate on an
        all-string-id collection: the candidate provably *is* the match
        (record ids are ``str(_id)``), so the plan is exact and the executor
        skips matching."""
        with self._cache_lock:
            self.fast_id_plans += 1
        if value in self.collection.record_ids():
            candidates = [value]
            estimated = self._read_estimate()
        else:
            candidates = []
            estimated = 0.0
        return QueryPlan(ID_LOOKUP, "_id", estimated, candidate_ids=candidates,
                         exact=True, cache_state="fast_id")

    def _cold_plan(self, query: dict[str, Any], params: list[Any],
                   limit: int | None) -> tuple[QueryPlan, _PlanTemplate]:
        compiled = compile_shape(query)
        matcher = Matcher(compiled, params)
        bucket = self._count_bucket()

        id_plan = self._id_lookup_plan(query)
        if id_plan is not None:
            id_plan.considered = [id_plan.summary()]
            id_plan.matcher = matcher
            return id_plan, _PlanTemplate(ID_LOOKUP, "_id", compiled, bucket)

        constraints = query_intervals(query)
        choices: list[QueryPlan] = []
        for field_path in sorted(constraints):
            index_plan = self._index_plan(field_path, constraints[field_path], limit)
            if index_plan is not None:
                choices.append(index_plan)
        full_scan = QueryPlan(FULL_SCAN, None, self._full_scan_estimate(limit))
        choices.append(full_scan)

        winner = min(choices, key=lambda plan: plan.estimated_cost)
        if winner.access_path == FULL_SCAN:
            winner.candidate_ids, winner.lookup_cost = self._scan_candidates()
        winner.considered = [plan.summary() for plan in choices]
        winner.matcher = matcher
        return winner, _PlanTemplate(winner.access_path, winner.field,
                                     compiled, bucket)

    def _plan_from_template(self, template: _PlanTemplate, query: dict[str, Any],
                            params: list[Any], limit: int | None) -> QueryPlan | None:
        """Rebuild the cached decision's concrete plan for this query's values.

        Returns None when the decision no longer applies (index dropped, or
        the collection left the document-count bucket it was made in) -- the
        caller then replans cold and refreshes the entry.
        """
        if template.count_bucket != self._count_bucket():
            return None
        matcher = Matcher(template.compiled, params)
        if template.access_path == ID_LOOKUP:
            plan = self._id_lookup_plan(query)
        elif template.access_path == FULL_SCAN:
            plan = QueryPlan(FULL_SCAN, None, self._full_scan_estimate(limit))
            plan.candidate_ids, plan.lookup_cost = self._scan_candidates()
        else:
            interval_set = query_intervals(query).get(template.field)
            if interval_set is None:
                return None
            plan = self._index_plan(template.field, interval_set, limit)
        if plan is None:
            return None
        plan.matcher = matcher
        return plan

    def _id_lookup_plan(self, query: dict[str, Any]) -> QueryPlan | None:
        pinned, value = equality_value(query, "_id")
        if not pinned:
            return None
        record_id = str(value)
        candidates = [record_id] if record_id in self.collection.record_ids() else []
        estimated = len(candidates) * self._read_estimate()
        return QueryPlan(ID_LOOKUP, "_id", estimated, candidate_ids=candidates)

    def _index_plan(self, field_path: str, interval_set: IntervalSet,
                    limit: int | None) -> QueryPlan | None:
        index = self.collection.index_for(field_path)
        if index is None or interval_set.is_full:
            return None
        if interval_set.is_empty:
            # The constraints are contradictory: the query matches nothing.
            return QueryPlan(INDEX_RANGE, field_path, 0.0, candidate_ids=[])
        parameters = self.collection.engine.parameters
        points = interval_set.point_values()
        if points is not None:
            ids: set[str] = set()
            for value in points:
                ids.update(index.lookup(value))
            lookup_cost = len(self.collection.indexes) * parameters.node_access
            reads = len(ids) if limit is None else min(len(ids), limit)
            return QueryPlan(
                INDEX_EQ, field_path,
                lookup_cost + reads * self._read_estimate(),
                candidate_ids=sorted(ids), lookup_cost=lookup_cost)
        if not isinstance(index, OrderedSecondaryIndex):
            return None
        intervals = list(interval_set)
        if any(interval.rank is None for interval in intervals):
            return None  # bounds are not orderable scalars
        # Lazy range plan: candidates stream from the tree in key order and
        # the lookup cost accrues with the walk.  The estimate is an upper
        # bound (the window size is unknown until walked): descent plus one
        # read per document up to the limit / collection size.
        count = self.collection.engine.count()
        reads_bound = count if limit is None else min(count, limit)
        lookup_estimate = (max(1, index.tree_depth()) * len(intervals)
                           * parameters.node_access)
        estimated = lookup_estimate + reads_bound * self._read_estimate()
        accesses_before = index.tree_node_accesses()

        def lazy_candidates() -> Iterator[str]:
            seen: set[str] = set()
            for interval in intervals:
                for record_id in index.iter_range(interval):
                    if record_id not in seen:
                        seen.add(record_id)
                        yield record_id

        def lazy_lookup_cost() -> float:
            return ((index.tree_node_accesses() - accesses_before)
                    * parameters.node_access)

        return QueryPlan(INDEX_RANGE, field_path, estimated,
                         lazy_candidates=lazy_candidates,
                         lazy_lookup_cost=lazy_lookup_cost)

    def _read_estimate(self) -> float:
        return self.collection.engine.point_read_cost_estimate()

    def _full_scan_estimate(self, limit: int | None) -> float:
        engine = self.collection.engine
        count = engine.count()
        # A full scan cannot stop early with confidence (matches may cluster
        # at the end), so limit does not discount the estimate.
        return count * (engine.scan_cost_per_document() + self._read_estimate())

    def _scan_candidates(self) -> tuple[list[str], float]:
        candidates: list[str] = []
        scan_cost = 0.0
        for record_id, __, cost in self.collection.engine.scan():
            candidates.append(record_id)
            scan_cost += cost
        return candidates, scan_cost
