"""The query planner: choosing an access path for every collection read.

The planner replaces the old ``Collection._candidates`` heuristic.  For a
query it enumerates the applicable access paths, estimates each one's
simulated cost from the engine's :class:`~repro.docstore.cost.CostParameters`,
and picks the cheapest:

* ``ID_LOOKUP``    -- the query pins ``_id`` to one value: direct record fetch.
* ``INDEX_EQ``     -- an indexed field is pinned to one or more point values
  (``$eq`` / ``$in``): hash-index lookups.
* ``INDEX_RANGE``  -- an indexed field is range-constrained (``$gt``/``$gte``/
  ``$lt``/``$lte``): an ordered ``tree.range()`` scan over the index B-tree.
* ``FULL_SCAN``    -- no usable index: every document is examined.

Candidate sets are always supersets of the true matches (the predicate
analysis over-approximates); the caller re-checks every candidate with
``matches()``, so planning never changes *what* a query returns, only how
many documents it examines and what the operation costs.

``explain()`` surfaces the decision -- the winning plan plus every
considered alternative with its estimated cost -- through
``Collection.explain`` / ``DocumentClient`` handles and the ``repro
explain`` CLI subcommand.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator

from repro.docstore.indexes import OrderedSecondaryIndex
from repro.docstore.matching import equality_value
from repro.docstore.predicates import IntervalSet, query_intervals

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.docstore.collection import Collection

ID_LOOKUP = "ID_LOOKUP"
INDEX_EQ = "INDEX_EQ"
INDEX_RANGE = "INDEX_RANGE"
FULL_SCAN = "FULL_SCAN"

ACCESS_PATHS = (ID_LOOKUP, INDEX_EQ, INDEX_RANGE, FULL_SCAN)


@dataclass
class QueryPlan:
    """One chosen access path plus the bookkeeping ``explain`` exposes.

    ``ID_LOOKUP`` / ``INDEX_EQ`` / ``FULL_SCAN`` plans carry a materialised
    ``candidate_ids`` list.  ``INDEX_RANGE`` plans are *lazy*: candidates
    stream from the index B-tree in ``(value, record id)`` order, so a
    limited executor walks only as much of the window as it needs, and the
    lookup cost accrues with the walk (``current_lookup_cost``).

    Attributes:
        access_path: one of :data:`ACCESS_PATHS`.
        field: the field path driving the access (None for full scans).
        estimated_cost: the planner's total cost estimate for the path.
        candidate_ids: record ids the executor will examine (None while a
            lazy plan is unmaterialised).
        lookup_cost: simulated cost incurred finding the candidates
            (index traversal / full-scan enumeration).
        considered: summaries of every path that was costed.
    """

    access_path: str
    field: str | None
    estimated_cost: float
    candidate_ids: list[str] | None = None
    lookup_cost: float = 0.0
    considered: list[dict[str, Any]] = field(default_factory=list)
    lazy_candidates: Callable[[], Iterator[str]] | None = None
    lazy_lookup_cost: Callable[[], float] | None = None

    def iter_candidates(self) -> Iterator[str]:
        if self.candidate_ids is not None:
            return iter(self.candidate_ids)
        return self.lazy_candidates()

    def current_lookup_cost(self) -> float:
        """The lookup cost charged so far (grows as a lazy plan is consumed)."""
        if self.lazy_lookup_cost is not None:
            return self.lazy_lookup_cost()
        return self.lookup_cost

    def materialize(self) -> list[str]:
        """Force a lazy plan's full candidate list (used by ``explain``)."""
        if self.candidate_ids is None:
            self.candidate_ids = list(self.lazy_candidates())
            self.lookup_cost = self.current_lookup_cost()
        return self.candidate_ids

    def summary(self) -> dict[str, Any]:
        return {
            "access_path": self.access_path,
            "field": self.field,
            "candidates_examined": (len(self.candidate_ids)
                                    if self.candidate_ids is not None else None),
            "estimated_cost": self.estimated_cost,
        }


class QueryPlanner:
    """Plans every read of one :class:`~repro.docstore.collection.Collection`."""

    def __init__(self, collection: "Collection"):
        self.collection = collection

    # -- planning ---------------------------------------------------------------

    def plan(self, query: dict[str, Any], limit: int | None = None) -> QueryPlan:
        """Choose and materialise the cheapest access path for ``query``.

        ``limit`` caps the estimated number of candidate reads (the executor
        stops after ``limit`` matches), which lets short range scans beat a
        full scan even on large collections.
        """
        query = query or {}
        id_plan = self._id_lookup_plan(query)
        if id_plan is not None:
            id_plan.considered = [id_plan.summary()]
            return id_plan

        constraints = query_intervals(query)
        choices: list[QueryPlan] = []
        for field_path in sorted(constraints):
            index_plan = self._index_plan(field_path, constraints[field_path], limit)
            if index_plan is not None:
                choices.append(index_plan)
        full_scan = QueryPlan(FULL_SCAN, None, self._full_scan_estimate(limit))
        choices.append(full_scan)

        winner = min(choices, key=lambda plan: plan.estimated_cost)
        if winner.access_path == FULL_SCAN:
            winner.candidate_ids, winner.lookup_cost = self._scan_candidates()
        winner.considered = [plan.summary() for plan in choices]
        return winner

    def explain(self, query: dict[str, Any] | None = None,
                limit: int | None = None) -> dict[str, Any]:
        """A MongoDB-``explain``-style description of how ``query`` would run.

        Note that explain materialises the winning plan's candidate set (for
        a winning full scan that enumerates the collection), so it charges
        the same simulated lookup costs the real query would.
        """
        plan = self.plan(query or {}, limit=limit)
        plan.materialize()
        winning = plan.summary()
        winning["lookup_cost"] = plan.lookup_cost
        considered = [
            plan.summary() if (entry["access_path"] == plan.access_path
                               and entry["field"] == plan.field) else entry
            for entry in plan.considered
        ]
        return {
            "collection": self.collection.name,
            "documents": self.collection.engine.count(),
            "query": query or {},
            "limit": limit,
            "winning_plan": winning,
            "considered_plans": considered,
        }

    # -- internals ---------------------------------------------------------------

    def _id_lookup_plan(self, query: dict[str, Any]) -> QueryPlan | None:
        pinned, value = equality_value(query, "_id")
        if not pinned:
            return None
        record_id = str(value)
        candidates = [record_id] if record_id in self.collection.record_ids() else []
        estimated = len(candidates) * self._read_estimate()
        return QueryPlan(ID_LOOKUP, "_id", estimated, candidate_ids=candidates)

    def _index_plan(self, field_path: str, interval_set: IntervalSet,
                    limit: int | None) -> QueryPlan | None:
        index = self.collection.index_for(field_path)
        if index is None or interval_set.is_full:
            return None
        if interval_set.is_empty:
            # The constraints are contradictory: the query matches nothing.
            return QueryPlan(INDEX_RANGE, field_path, 0.0, candidate_ids=[])
        parameters = self.collection.engine.parameters
        points = interval_set.point_values()
        if points is not None:
            ids: set[str] = set()
            for value in points:
                ids.update(index.lookup(value))
            lookup_cost = len(self.collection.indexes) * parameters.node_access
            reads = len(ids) if limit is None else min(len(ids), limit)
            return QueryPlan(
                INDEX_EQ, field_path,
                lookup_cost + reads * self._read_estimate(),
                candidate_ids=sorted(ids), lookup_cost=lookup_cost)
        if not isinstance(index, OrderedSecondaryIndex):
            return None
        intervals = list(interval_set)
        if any(interval.rank is None for interval in intervals):
            return None  # bounds are not orderable scalars
        # Lazy range plan: candidates stream from the tree in key order and
        # the lookup cost accrues with the walk.  The estimate is an upper
        # bound (the window size is unknown until walked): descent plus one
        # read per document up to the limit / collection size.
        count = self.collection.engine.count()
        reads_bound = count if limit is None else min(count, limit)
        lookup_estimate = (max(1, index.tree_depth()) * len(intervals)
                           * parameters.node_access)
        estimated = lookup_estimate + reads_bound * self._read_estimate()
        accesses_before = index.tree_node_accesses()

        def lazy_candidates() -> Iterator[str]:
            seen: set[str] = set()
            for interval in intervals:
                for record_id in index.iter_range(interval):
                    if record_id not in seen:
                        seen.add(record_id)
                        yield record_id

        def lazy_lookup_cost() -> float:
            return ((index.tree_node_accesses() - accesses_before)
                    * parameters.node_access)

        return QueryPlan(INDEX_RANGE, field_path, estimated,
                         lazy_candidates=lazy_candidates,
                         lazy_lookup_cost=lazy_lookup_cost)

    def _read_estimate(self) -> float:
        return self.collection.engine.point_read_cost_estimate()

    def _full_scan_estimate(self, limit: int | None) -> float:
        engine = self.collection.engine
        count = engine.count()
        # A full scan cannot stop early with confidence (matches may cluster
        # at the end), so limit does not discount the estimate.
        return count * (engine.scan_cost_per_document() + self._read_estimate())

    def _scan_candidates(self) -> tuple[list[str], float]:
        candidates: list[str] = []
        scan_cost = 0.0
        for record_id, __, cost in self.collection.engine.scan():
            candidates.append(record_id)
            scan_cost += cost
        return candidates, scan_cost
