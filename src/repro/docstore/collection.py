"""Collections: the CRUD surface of the document store.

A collection combines

* a storage engine instance (wiredTiger or mmapv1) holding the documents,
* an index catalog of ordered secondary indexes maintained on every write,
* an ``_id`` primary index (a record-id set for point lookups plus an
  ordered index so ``_id`` range scans never touch the whole collection), and
* a :class:`~repro.docstore.planner.QueryPlanner` that picks the access path
  (``ID_LOOKUP`` / ``INDEX_EQ`` / ``INDEX_RANGE`` / ``FULL_SCAN``) for every
  read and drives ``find`` / ``find_one`` / ``count`` / ``update`` /
  ``delete``; :meth:`Collection.explain` exposes its decisions.

Every operation returns an :class:`OperationResult` carrying the simulated
cost so workload drivers can account latency without real sleeping.

**Copy-on-write document protocol.**  The write boundary
(:meth:`insert_one` / :meth:`insert_many` / the update paths) freezes one
canonical stored document per write -- validated, deep-copied and sized in a
single walk (:func:`~repro.docstore.documents.freeze_document`) -- and the
engines store that object as-is.  Reads hand the stored object back by
reference to *internal* consumers (planner re-checks, index maintenance,
oplog capture, router merging); only the client surface
(:class:`~repro.docstore.cursor.Cursor`, :meth:`find_one`,
:class:`~repro.docstore.client.DocumentClient`) materialises a defensive
copy, exactly once per returned document.  Callers of the internal read
paths (:meth:`find_with_cost` / ``_find_all``) must treat the documents they
receive as immutable.

**Concurrency protocol (PR 6).**  Reads are *latch-free*: stored documents
are frozen, both engines serve point reads from structures a reader can
never observe torn (a copy-on-write B-tree snapshot / a single dict
lookup), and index candidate enumeration reads bucket snapshots.  Writes
follow the lock hierarchy documented in :mod:`repro.docstore.locks`
(collection -> stripe -> index latch -> engine latch):

* ``insert_one`` freezes the document outside any lock, then under the
  engine's write lock re-checks the id (the pre-lock duplicate check is
  only a fast-fail), indexes, inserts and notifies.
* ``update_one`` / ``delete_one`` use *locate-lock-revalidate*: find a
  candidate latch-free, take its write lock, re-read the current version
  and re-check the query against it -- retrying the find when a concurrent
  writer invalidated the candidate.  The update is applied to the freshest
  version under the lock, so read-modify-write operators (``$inc``) never
  lose updates.
* index mutations happen under a per-collection index latch nested inside
  the write lock, keeping index writers serialised while index readers
  stay latch-free.
* change notification fires inside the write lock, so oplog order always
  equals apply order.
"""

from __future__ import annotations

import copy
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any

from repro.docstore.cursor import Cursor
from repro.docstore.observability import render_query_shape
from repro.docstore.documents import (
    clone_document,
    freeze_document,
    measure_document,
    with_id,
)
from repro.docstore.engine_base import StorageEngine
from repro.docstore.indexes import IndexCatalog, OrderedSecondaryIndex, SecondaryIndex
from repro.docstore.matching import matches
from repro.docstore.planner import QueryPlanner
from repro.docstore.update_ops import apply_update
from repro.errors import DocumentStoreError, DuplicateKeyError


@dataclass(slots=True)
class OperationResult:
    """Outcome of a single collection operation.

    Attributes:
        acknowledged: True for every completed operation.
        matched_count / modified_count / deleted_count / inserted_ids: the
            usual driver-level counters.
        simulated_seconds: total simulated service time charged by the engine.
        documents: result documents for read operations.  On results returned
            by the internal ``find_with_cost`` path these are the stored
            objects themselves (treat as immutable); the client surface
            replaces them with defensive copies.
        shard_costs: per-shard cost breakdown, filled in by the sharding
            router when the operation ran against a cluster (empty for
            single-server operations).
        shard_wall_seconds: measured per-shard wall-clock seconds for router
            fan-outs (empty for single-server and single-shard operations);
            unlike ``shard_costs`` these are real elapsed times, so they
            expose the actual straggler under parallel dispatch.
    """

    acknowledged: bool = True
    matched_count: int = 0
    modified_count: int = 0
    deleted_count: int = 0
    inserted_ids: list[str] = field(default_factory=list)
    simulated_seconds: float = 0.0
    documents: list[dict[str, Any]] = field(default_factory=list)
    shard_costs: dict[str, float] = field(default_factory=dict)
    shard_wall_seconds: dict[str, float] = field(default_factory=dict)


class Collection:
    """A named set of documents stored in one engine."""

    def __init__(self, name: str, engine: StorageEngine,
                 profiler: Any = None, namespace: str | None = None):
        self.name = name
        self.engine = engine
        # Operation profiler shared with the owning server (None for bare
        # collections).  Every public operation checks ``profiler.enabled``
        # -- a plain attribute load and branch -- so level 0 stays off the
        # hot path entirely.  ``namespace`` is the ``db.collection`` string
        # spans report (defaults to the bare collection name).
        self.profiler = profiler
        self.namespace = namespace or name
        self.indexes = IndexCatalog()
        self._ids: set[str] = set()
        # Ordered index over the ``_id`` values so range predicates on the
        # primary key are real range scans.  It is primary-key bookkeeping,
        # not a catalog entry: it does not count towards index-maintenance
        # cost (the engines already charge for their own key structures).
        self._id_index = OrderedSecondaryIndex("_id")
        self.planner = QueryPlanner(self)
        # True once any live document carried a non-string ``_id`` -- the
        # planner's exact id-lookup fast path is only sound for all-string
        # collections (record ids are ``str(_id)``).  Conservatively sticky:
        # deleting the offending document does not reset it.
        self._has_non_string_ids = False
        # Optional write observer ``(operation, record_id, post_image)`` fired
        # after every successful document change.  The replication subsystem
        # attaches one to a primary's collections to capture the exact
        # post-images its oplog replays on secondaries; ``None`` costs
        # nothing.  Post-images are the frozen stored documents -- listeners
        # may keep references but must never mutate them.
        self.change_listener: Any = None
        # Serialises index mutations (catalog + _id index); nested strictly
        # inside a held write lock (see the module docstring's hierarchy).
        self._index_latch = threading.Lock()

    # -- profiling --------------------------------------------------------------

    @contextmanager
    def _profiled(self, op: str, query: Any = None):
        """Run one operation inside a :class:`ProfiledOp` span.

        Only entered when the profiler is enabled (callers gate on
        ``profiler.enabled`` first).  The span's lock wait is the *calling
        thread's* wait delta across the operation, read from the engine's
        :class:`~repro.docstore.locks.LockStats` thread-local accounting.
        """
        stats = self.engine.locks.stats
        wait_before = stats.thread_wait_seconds()
        shape = render_query_shape(query) if query is not None else None
        with self.profiler.operation(op, self.namespace, shape) as span:
            try:
                yield span
            finally:
                span.lock_wait_ms = (stats.thread_wait_seconds()
                                     - wait_before) * 1000.0

    # -- writes -----------------------------------------------------------------

    def insert_one(self, document: dict[str, Any]) -> OperationResult:
        """Insert a single document (an ``_id`` is generated when missing)."""
        profiler = self.profiler
        if profiler is None or not profiler.enabled:
            return self._insert_one(document)
        with self._profiled("insert") as span:
            result = self._insert_one(document)
            span.note_result(result)
            return result

    def _insert_one(self, document: dict[str, Any]) -> OperationResult:
        record_id, frozen, size = self._prepare_insert(document)
        with self.engine.locks.write(record_id):
            # The duplicate check in _prepare_insert ran outside the lock and
            # is only a fast-fail; identical record ids map to the same
            # stripe, so this re-check under the write lock is authoritative
            # -- exactly one of two concurrent same-id inserts succeeds.
            if record_id in self._ids:
                raise DuplicateKeyError(
                    f"duplicate _id {record_id!r} in collection {self.name!r}"
                )
            with self._index_latch:
                self._index_new_document(record_id, frozen)
            cost = self.engine.insert(record_id, frozen, size)
            cost += self.engine.index_maintenance_cost(len(self.indexes))
            self._ids.add(record_id)
            self._notify("insert", record_id, frozen)
        return OperationResult(
            inserted_ids=[record_id], modified_count=0, simulated_seconds=cost
        )

    def insert_many(self, documents: list[dict[str, Any]]) -> OperationResult:
        """Insert several documents as one batch.

        Documents are frozen and index-maintained in order up to the first
        failing one, then the valid prefix is handed to the engine's
        :meth:`~repro.docstore.engine_base.StorageEngine.insert_batch` under
        a single batch-wide lock round.  On failure the prefix stays inserted
        and the error is re-raised -- exactly the semantics of looping
        :meth:`insert_one` (MongoDB's ordered inserts), which also keeps the
        sharded router's per-document loop equivalent to this path.  The
        simulated cost equals the sum of the individual inserts; batching
        only amortises the real-world bookkeeping.
        """
        profiler = self.profiler
        if profiler is None or not profiler.enabled:
            return self._insert_many(documents)
        with self._profiled("insert") as span:
            result = self._insert_many(documents)
            span.note_result(result)
            return result

    def _insert_many(self, documents: list[dict[str, Any]]) -> OperationResult:
        if not documents:
            return OperationResult()
        records: list[tuple[str, dict[str, Any], int]] = []
        seen: set[str] = set()
        error: Exception | None = None
        cost = 0.0
        inserted: list[str] = []
        # The whole batch runs under the collection-exclusive batch lock so
        # the per-document duplicate checks, index updates and engine inserts
        # cannot interleave with concurrent single-document writers.
        with self.engine.locks.write_batch():
            for document in documents:
                try:
                    record_id, frozen, size = self._prepare_insert(document)
                    if record_id in seen:
                        raise DuplicateKeyError(
                            f"duplicate _id {record_id!r} in collection {self.name!r}"
                        )
                    with self._index_latch:
                        self._index_new_document(record_id, frozen)
                except Exception as failure:  # keep the valid prefix, re-raise below
                    error = failure
                    break
                seen.add(record_id)
                records.append((record_id, frozen, size))
            if records:
                cost = self.engine.insert_batch(records)
                cost += self.engine.index_maintenance_cost(len(self.indexes),
                                                           operations=len(records))
                for record_id, frozen, __ in records:
                    self._ids.add(record_id)
                    inserted.append(record_id)
                    self._notify("insert", record_id, frozen)
        if error is not None:
            raise error
        return OperationResult(inserted_ids=inserted, simulated_seconds=cost)

    def _index_new_document(self, record_id: str, frozen: dict[str, Any]) -> None:
        """Add one document to every index, rolling back on failure.

        A unique-index violation can strike after some catalog indexes were
        already updated; removing the document again (removal tolerates
        absent entries) guarantees a failed insert leaves no phantom index
        entries behind.
        """
        try:
            self.indexes.add_document(record_id, frozen)
            self._id_index.add(record_id, frozen)
        except Exception:
            self.indexes.remove_document(record_id, frozen)
            self._id_index.remove(record_id, frozen)
            raise

    def _prepare_insert(self, document: dict[str, Any]) -> tuple[str, dict[str, Any], int]:
        """Freeze one incoming document: id it, validate+copy+size in one walk."""
        if not isinstance(document, dict):
            raise DocumentStoreError(
                f"documents must be dictionaries, got {type(document).__name__}"
            )
        stored = with_id(document)
        frozen, size = freeze_document(stored)
        identifier = frozen["_id"]
        if type(identifier) is not str:
            self._has_non_string_ids = True
        record_id = str(identifier)
        if record_id in self._ids:
            raise DuplicateKeyError(
                f"duplicate _id {record_id!r} in collection {self.name!r}"
            )
        return record_id, frozen, size

    def update_one(self, query: dict[str, Any], update: dict[str, Any]) -> OperationResult:
        """Apply ``update`` to the first document matching ``query``.

        Locate-lock-revalidate: the candidate is found latch-free, then
        re-validated under its write lock against the *current* stored
        version; the update is computed from that freshest version, so
        read-modify-write operators never lose concurrent updates.  When a
        concurrent writer invalidated the candidate, the find is retried.
        """
        profiler = self.profiler
        if profiler is None or not profiler.enabled:
            return self._update_one(query, update)
        with self._profiled("update", query) as span:
            result = self._update_one(query, update, span=span)
            span.note_result(result)
            return result

    def _update_one(self, query: dict[str, Any], update: dict[str, Any],
                    span: Any = None) -> OperationResult:
        total_cost = 0.0
        while True:
            record_id, document, find_cost = self._find_first(query, span=span)
            total_cost += find_cost
            if record_id is None:
                return OperationResult(matched_count=0, simulated_seconds=total_cost)
            with self.engine.locks.write(record_id):
                current = self.engine.peek(record_id)
                if current is None or (current is not document
                                       and not matches(current, query)):
                    continue  # lost the race with a concurrent writer: re-find
                new_document = apply_update(current, update)
                size = measure_document(new_document)
                with self._index_latch:
                    self.indexes.remove_document(record_id, current)
                    self.indexes.add_document(record_id, new_document)
                cost = self.engine.update(record_id, new_document, size)
                cost += self.engine.index_maintenance_cost(len(self.indexes))
                self._notify("update", record_id, new_document)
            return OperationResult(
                matched_count=1,
                modified_count=0 if new_document == current else 1,
                simulated_seconds=total_cost + cost,
            )

    def update_many(self, query: dict[str, Any], update: dict[str, Any]) -> OperationResult:
        """Apply ``update`` to every matching document.

        Each snapshot candidate is re-validated under its write lock (as in
        :meth:`update_one`); candidates a concurrent writer deleted or
        changed away from the query are skipped rather than re-found.
        """
        profiler = self.profiler
        if profiler is None or not profiler.enabled:
            return self._update_many(query, update)
        with self._profiled("update", query) as span:
            result = self._update_many(query, update, span=span)
            span.note_result(result)
            return result

    def _update_many(self, query: dict[str, Any], update: dict[str, Any],
                     span: Any = None) -> OperationResult:
        matches_found = self._find_all(query, span=span)
        total_cost = matches_found.simulated_seconds
        matched = 0
        modified = 0
        for document in matches_found.documents:
            record_id = str(document["_id"])
            with self.engine.locks.write(record_id):
                current = self.engine.peek(record_id)
                if current is None or (current is not document
                                       and not matches(current, query)):
                    continue
                new_document = apply_update(current, update)
                size = measure_document(new_document)
                with self._index_latch:
                    self.indexes.remove_document(record_id, current)
                    self.indexes.add_document(record_id, new_document)
                total_cost += self.engine.update(record_id, new_document, size)
                total_cost += self.engine.index_maintenance_cost(len(self.indexes))
                self._notify("update", record_id, new_document)
            matched += 1
            if new_document != current:
                modified += 1
        return OperationResult(
            matched_count=matched,
            modified_count=modified,
            simulated_seconds=total_cost,
        )

    def replace_one(self, query: dict[str, Any], replacement: dict[str, Any]) -> OperationResult:
        """Replace the first matching document wholesale."""
        if any(key.startswith("$") for key in replacement):
            raise DocumentStoreError("replacement documents may not contain operators")
        return self.update_one(query, replacement)

    def delete_one(self, query: dict[str, Any]) -> OperationResult:
        """Delete the first document matching ``query`` (locate-lock-revalidate)."""
        profiler = self.profiler
        if profiler is None or not profiler.enabled:
            return self._delete_one(query)
        with self._profiled("delete", query) as span:
            result = self._delete_one(query, span=span)
            span.note_result(result)
            return result

    def _delete_one(self, query: dict[str, Any], span: Any = None) -> OperationResult:
        total_cost = 0.0
        while True:
            record_id, document, find_cost = self._find_first(query, span=span)
            total_cost += find_cost
            if record_id is None:
                return OperationResult(deleted_count=0, simulated_seconds=total_cost)
            with self.engine.locks.write(record_id):
                current = self.engine.peek(record_id)
                if current is None or (current is not document
                                       and not matches(current, query)):
                    continue  # lost the race with a concurrent writer: re-find
                with self._index_latch:
                    self.indexes.remove_document(record_id, current)
                    self._id_index.remove(record_id, current)
                cost = self.engine.delete(record_id)
                self._ids.discard(record_id)
                self._notify("delete", record_id, None)
            return OperationResult(deleted_count=1, simulated_seconds=total_cost + cost)

    def delete_many(self, query: dict[str, Any]) -> OperationResult:
        """Delete every matching document (stale snapshot candidates are skipped)."""
        profiler = self.profiler
        if profiler is None or not profiler.enabled:
            return self._delete_many(query)
        with self._profiled("delete", query) as span:
            result = self._delete_many(query, span=span)
            span.note_result(result)
            return result

    def _delete_many(self, query: dict[str, Any], span: Any = None) -> OperationResult:
        matches_found = self._find_all(query, span=span)
        total_cost = matches_found.simulated_seconds
        deleted = 0
        for document in matches_found.documents:
            record_id = str(document["_id"])
            with self.engine.locks.write(record_id):
                current = self.engine.peek(record_id)
                if current is None or (current is not document
                                       and not matches(current, query)):
                    continue
                with self._index_latch:
                    self.indexes.remove_document(record_id, current)
                    self._id_index.remove(record_id, current)
                total_cost += self.engine.delete(record_id)
                self._ids.discard(record_id)
                self._notify("delete", record_id, None)
            deleted += 1
        return OperationResult(
            deleted_count=deleted, simulated_seconds=total_cost
        )

    # -- reads ---------------------------------------------------------------------

    def find(self, query: dict[str, Any] | None = None,
             projection: dict[str, int] | None = None) -> Cursor:
        """Return a cursor over documents matching ``query`` (all when None).

        The cursor pushes its ``limit`` down into the planner when no sort
        is requested, so a limited range scan stops after enough matches.
        Returned documents are defensive copies (made once, by the cursor).
        """
        query = query or {}
        return Cursor(
            lambda limit=None: self.find_with_cost(query, limit=limit).documents,
            projection,
        )

    def find_one(self, query: dict[str, Any] | None = None) -> dict[str, Any] | None:
        """Return a copy of the first matching document or ``None``."""
        profiler = self.profiler
        if profiler is None or not profiler.enabled:
            __, document, __cost = self._find_first(query or {})
            return clone_document(document) if document is not None else None
        with self._profiled("query", query or {}) as span:
            __, document, cost = self._find_first(query or {}, span=span)
            span.note_simulated(cost)
            span.docs_returned = 1 if document is not None else 0
            return clone_document(document) if document is not None else None

    def find_with_cost(self, query: dict[str, Any] | None = None,
                       limit: int | None = None) -> OperationResult:
        """Like :meth:`find` but returns documents *and* the simulated cost.

        This is the internal read path: the result documents are the stored
        objects themselves and must not be mutated.  The client surface
        (:class:`~repro.docstore.client.CollectionHandle`) copies them.
        """
        profiler = self.profiler
        if profiler is None or not profiler.enabled:
            return self._find_all(query or {}, limit=limit)
        with self._profiled("query", query or {}) as span:
            result = self._find_all(query or {}, limit=limit, span=span)
            span.note_result(result)
            return result

    def explain(self, query: dict[str, Any] | list[dict[str, Any]] | None = None,
                limit: int | None = None) -> dict[str, Any]:
        """Describe the access path ``query`` would use (see the planner).

        ``query`` may also be an aggregation pipeline (a list of stages), in
        which case the report covers the pipeline's per-stage pushdown
        decisions and the source's winning access path.
        """
        if isinstance(query, list):
            from repro.docstore.aggregation import explain_pipeline
            return explain_pipeline(self, query)
        return self.planner.explain(query or {}, limit=limit)

    def aggregate(self, pipeline: list[dict[str, Any]] | None = None) -> OperationResult:
        """Run an aggregation pipeline (see :mod:`repro.docstore.aggregation`).

        This is an internal read path like :meth:`find_with_cost`: documents
        passed through unchanged by the pipeline are the stored objects
        themselves and must be treated as immutable; the client surface
        clones them.
        """
        from repro.docstore.aggregation import execute_pipeline
        profiler = self.profiler
        if profiler is None or not profiler.enabled:
            return execute_pipeline(self, pipeline)
        with self._profiled("aggregate", pipeline or []) as span:
            result = execute_pipeline(self, pipeline, span=span)
            span.note_result(result)
            return result

    def aggregate_partial(self, prefix: list[dict[str, Any]],
                          group_spec: dict[str, Any]) -> OperationResult:
        """Shard-side partial ``$group``: one accumulator-state row per group.

        The sharding router calls this on every targeted shard and combines
        the returned states, so a distributed ``$group`` ships group states
        instead of matching documents.
        """
        from repro.docstore.aggregation import execute_partial
        profiler = self.profiler
        if profiler is None or not profiler.enabled:
            return execute_partial(self, prefix, group_spec)
        with self._profiled("aggregate", prefix) as span:
            result = execute_partial(self, prefix, group_spec, span=span)
            span.note_result(result)
            return result

    def distinct(self, field_path: str,
                 query: dict[str, Any] | None = None) -> list[Any]:
        """Distinct values of ``field_path`` among documents matching ``query``."""
        from repro.docstore.aggregation import distinct_values
        profiler = self.profiler
        if profiler is None or not profiler.enabled:
            return distinct_values(self, field_path, query)
        with self._profiled("distinct", query or {}) as span:
            values = distinct_values(self, field_path, query)
            span.docs_returned = len(values)
            return values

    def count_documents(self, query: dict[str, Any] | None = None) -> int:
        """Number of documents matching ``query``.

        Counting never materialises a result list: candidates stream from
        the plan and are tallied against the compiled matcher in place.
        """
        profiler = self.profiler
        if profiler is None or not profiler.enabled:
            return self._count(query)
        with self._profiled("count", query or {}) as span:
            count = self._count(query, span=span)
            span.docs_returned = count
            return count

    def _count(self, query: dict[str, Any] | None, span: Any = None) -> int:
        if not query:
            return self.engine.count()
        plan = self.planner.plan(query)
        if span is not None:
            span.note_plan(plan.access_path, plan.cache_state)
        matcher = plan.matcher
        read = self.engine.read  # latch-free (see module docstring)
        count = 0
        examined = 0
        read_cost = 0.0
        for record_id in plan.iter_candidates():
            examined += 1
            document, cost = read(record_id)
            read_cost += cost
            if document is not None and (matcher is None or matcher(document)):
                count += 1
        if span is not None:
            span.docs_examined += examined
            span.note_simulated(plan.current_lookup_cost() + read_cost)
        return count

    # -- index management -------------------------------------------------------------

    def create_index(self, field_path: str, unique: bool = False) -> str:
        """Create a secondary index on ``field_path`` and backfill it.

        DDL runs under the collection-exclusive batch lock so the backfill
        scan cannot interleave with concurrent writers.
        """
        with self.engine.locks.write_batch():
            with self._index_latch:
                index = self.indexes.create(field_path, unique=unique)
                for record_id, document, __ in self.engine.scan():
                    index.add(record_id, document)
            self.planner.invalidate_cache()
        return field_path

    def drop_index(self, field_path: str) -> bool:
        with self._index_latch:
            dropped = self.indexes.drop(field_path)
        if dropped:
            self.planner.invalidate_cache()
        return dropped

    # -- statistics ----------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """A ``collStats``-style document including engine statistics."""
        engine_stats = self.engine.statistics()
        engine_stats["collection"] = self.name
        engine_stats["indexes"] = self.indexes.names()
        engine_stats["plan_cache"] = self.planner.cache_stats()
        return engine_stats

    # -- internals -------------------------------------------------------------------------

    def _notify(self, operation: str, record_id: str,
                document: dict[str, Any] | None) -> None:
        if self.change_listener is not None:
            self.change_listener(operation, record_id, document)

    def index_for(self, field_path: str) -> SecondaryIndex | None:
        """The index usable for ``field_path`` (the ``_id`` index included)."""
        if field_path == "_id":
            return self._id_index
        return self.indexes.get(field_path)

    def record_ids(self) -> set[str]:
        """The live record-id set (planner plumbing for ``ID_LOOKUP``)."""
        return self._ids

    def has_non_string_ids(self) -> bool:
        """Whether any document ever stored here carried a non-string ``_id``."""
        return self._has_non_string_ids

    def _find_all(self, query: dict[str, Any],
                  limit: int | None = None, span: Any = None) -> OperationResult:
        plan = self.planner.plan(query, limit=limit)
        if span is not None:
            span.note_plan(plan.access_path, plan.cache_state)
        matcher = plan.matcher
        # Latch-free read path: frozen documents + snapshot-consistent engine
        # structures make torn reads impossible (see module docstring).
        read = self.engine.read
        documents: list[dict[str, Any]] = []
        read_cost = 0.0
        examined = 0
        for record_id in plan.iter_candidates():
            examined += 1
            document, cost = read(record_id)
            read_cost += cost
            if document is not None and (matcher is None or matcher(document)):
                documents.append(document)
                if limit is not None and len(documents) >= limit:
                    break
        if span is not None:
            span.docs_examined += examined
        return OperationResult(documents=documents,
                               simulated_seconds=plan.current_lookup_cost() + read_cost,
                               matched_count=len(documents))

    def _find_first(self, query: dict[str, Any],
                    span: Any = None) -> tuple[str | None, dict[str, Any] | None, float]:
        plan = self.planner.plan(query, limit=1)
        if span is not None:
            span.note_plan(plan.access_path, plan.cache_state)
        matcher = plan.matcher
        read_cost = 0.0
        examined = 0
        try:
            for record_id in plan.iter_candidates():
                examined += 1
                document, cost = self.engine.read(record_id)  # latch-free
                read_cost += cost
                if document is not None and (matcher is None or matcher(document)):
                    return record_id, document, plan.current_lookup_cost() + read_cost
            return None, None, plan.current_lookup_cost() + read_cost
        finally:
            if span is not None:
                span.docs_examined += examined

    def __len__(self) -> int:
        return self.engine.count()

    def __repr__(self) -> str:
        return f"Collection({self.name!r}, engine={self.engine.name!r}, documents={len(self)})"


def deep_copy_document(document: dict[str, Any]) -> dict[str, Any]:
    """Deep copy helper exported for tests."""
    return copy.deepcopy(document)
