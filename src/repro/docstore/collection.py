"""Collections: the CRUD surface of the document store.

A collection combines

* a storage engine instance (wiredTiger or mmapv1) holding the documents,
* an index catalog of ordered secondary indexes maintained on every write,
* an ``_id`` primary index (a record-id set for point lookups plus an
  ordered index so ``_id`` range scans never touch the whole collection), and
* a :class:`~repro.docstore.planner.QueryPlanner` that picks the access path
  (``ID_LOOKUP`` / ``INDEX_EQ`` / ``INDEX_RANGE`` / ``FULL_SCAN``) for every
  read and drives ``find`` / ``find_one`` / ``count`` / ``update`` /
  ``delete``; :meth:`Collection.explain` exposes its decisions.

Every operation returns an :class:`OperationResult` carrying the simulated
cost so workload drivers can account latency without real sleeping.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any

from repro.docstore.cursor import Cursor
from repro.docstore.documents import validate_document, with_id
from repro.docstore.engine_base import StorageEngine
from repro.docstore.indexes import IndexCatalog, OrderedSecondaryIndex, SecondaryIndex
from repro.docstore.matching import matches
from repro.docstore.planner import QueryPlanner
from repro.docstore.update_ops import apply_update
from repro.errors import DocumentStoreError, DuplicateKeyError


@dataclass
class OperationResult:
    """Outcome of a single collection operation.

    Attributes:
        acknowledged: True for every completed operation.
        matched_count / modified_count / deleted_count / inserted_ids: the
            usual driver-level counters.
        simulated_seconds: total simulated service time charged by the engine.
        documents: result documents for read operations.
        shard_costs: per-shard cost breakdown, filled in by the sharding
            router when the operation ran against a cluster (empty for
            single-server operations).
    """

    acknowledged: bool = True
    matched_count: int = 0
    modified_count: int = 0
    deleted_count: int = 0
    inserted_ids: list[str] = field(default_factory=list)
    simulated_seconds: float = 0.0
    documents: list[dict[str, Any]] = field(default_factory=list)
    shard_costs: dict[str, float] = field(default_factory=dict)


class Collection:
    """A named set of documents stored in one engine."""

    def __init__(self, name: str, engine: StorageEngine):
        self.name = name
        self.engine = engine
        self.indexes = IndexCatalog()
        self._ids: set[str] = set()
        # Ordered index over the ``_id`` values so range predicates on the
        # primary key are real range scans.  It is primary-key bookkeeping,
        # not a catalog entry: it does not count towards index-maintenance
        # cost (the engines already charge for their own key structures).
        self._id_index = OrderedSecondaryIndex("_id")
        self.planner = QueryPlanner(self)
        # Optional write observer ``(operation, record_id, post_image)`` fired
        # after every successful document change.  The replication subsystem
        # attaches one to a primary's collections to capture the exact
        # post-images its oplog replays on secondaries; ``None`` costs nothing.
        self.change_listener: Any = None

    # -- writes -----------------------------------------------------------------

    def insert_one(self, document: dict[str, Any]) -> OperationResult:
        """Insert a single document (an ``_id`` is generated when missing)."""
        validate_document(document)
        stored = with_id(document)
        record_id = str(stored["_id"])
        if record_id in self._ids:
            raise DuplicateKeyError(
                f"duplicate _id {record_id!r} in collection {self.name!r}"
            )
        self.indexes.add_document(record_id, stored)
        self._id_index.add(record_id, stored)
        with self.engine.locks.write(record_id):
            cost = self.engine.insert(record_id, stored)
            cost += self.engine.index_maintenance_cost(len(self.indexes))
        self._ids.add(record_id)
        self._notify("insert", record_id, stored)
        return OperationResult(
            inserted_ids=[record_id], modified_count=0, simulated_seconds=cost
        )

    def insert_many(self, documents: list[dict[str, Any]]) -> OperationResult:
        """Insert several documents; cost is the sum of the individual inserts."""
        combined = OperationResult()
        for document in documents:
            result = self.insert_one(document)
            combined.inserted_ids.extend(result.inserted_ids)
            combined.simulated_seconds += result.simulated_seconds
        return combined

    def update_one(self, query: dict[str, Any], update: dict[str, Any]) -> OperationResult:
        """Apply ``update`` to the first document matching ``query``."""
        record_id, document, find_cost = self._find_first(query)
        if record_id is None:
            return OperationResult(matched_count=0, simulated_seconds=find_cost)
        new_document = apply_update(document, update)
        validate_document(new_document)
        self.indexes.remove_document(record_id, document)
        self.indexes.add_document(record_id, new_document)
        with self.engine.locks.write(record_id):
            cost = self.engine.update(record_id, new_document)
            cost += self.engine.index_maintenance_cost(len(self.indexes))
        self._notify("update", record_id, new_document)
        return OperationResult(
            matched_count=1,
            modified_count=0 if new_document == document else 1,
            simulated_seconds=find_cost + cost,
        )

    def update_many(self, query: dict[str, Any], update: dict[str, Any]) -> OperationResult:
        """Apply ``update`` to every matching document."""
        matches_found = self._find_all(query)
        total_cost = matches_found.simulated_seconds
        modified = 0
        for document in matches_found.documents:
            record_id = str(document["_id"])
            new_document = apply_update(document, update)
            validate_document(new_document)
            self.indexes.remove_document(record_id, document)
            self.indexes.add_document(record_id, new_document)
            with self.engine.locks.write(record_id):
                total_cost += self.engine.update(record_id, new_document)
                total_cost += self.engine.index_maintenance_cost(len(self.indexes))
            self._notify("update", record_id, new_document)
            if new_document != document:
                modified += 1
        return OperationResult(
            matched_count=len(matches_found.documents),
            modified_count=modified,
            simulated_seconds=total_cost,
        )

    def replace_one(self, query: dict[str, Any], replacement: dict[str, Any]) -> OperationResult:
        """Replace the first matching document wholesale."""
        if any(key.startswith("$") for key in replacement):
            raise DocumentStoreError("replacement documents may not contain operators")
        return self.update_one(query, replacement)

    def delete_one(self, query: dict[str, Any]) -> OperationResult:
        """Delete the first document matching ``query``."""
        record_id, document, find_cost = self._find_first(query)
        if record_id is None:
            return OperationResult(deleted_count=0, simulated_seconds=find_cost)
        self.indexes.remove_document(record_id, document)
        self._id_index.remove(record_id, document)
        with self.engine.locks.write(record_id):
            cost = self.engine.delete(record_id)
        self._ids.discard(record_id)
        self._notify("delete", record_id, None)
        return OperationResult(deleted_count=1, simulated_seconds=find_cost + cost)

    def delete_many(self, query: dict[str, Any]) -> OperationResult:
        """Delete every document matching ``query``."""
        matches_found = self._find_all(query)
        total_cost = matches_found.simulated_seconds
        for document in matches_found.documents:
            record_id = str(document["_id"])
            self.indexes.remove_document(record_id, document)
            self._id_index.remove(record_id, document)
            with self.engine.locks.write(record_id):
                total_cost += self.engine.delete(record_id)
            self._ids.discard(record_id)
            self._notify("delete", record_id, None)
        return OperationResult(
            deleted_count=len(matches_found.documents), simulated_seconds=total_cost
        )

    # -- reads ---------------------------------------------------------------------

    def find(self, query: dict[str, Any] | None = None,
             projection: dict[str, int] | None = None) -> Cursor:
        """Return a cursor over documents matching ``query`` (all when None).

        The cursor pushes its ``limit`` down into the planner when no sort
        is requested, so a limited range scan stops after enough matches.
        """
        query = query or {}
        return Cursor(
            lambda limit=None: self._find_all(query, limit=limit).documents,
            projection,
        )

    def find_one(self, query: dict[str, Any] | None = None) -> dict[str, Any] | None:
        """Return the first matching document or ``None``."""
        __, document, __cost = self._find_first(query or {})
        return document

    def find_with_cost(self, query: dict[str, Any] | None = None,
                       limit: int | None = None) -> OperationResult:
        """Like :meth:`find` but returns documents *and* the simulated cost."""
        return self._find_all(query or {}, limit=limit)

    def explain(self, query: dict[str, Any] | None = None,
                limit: int | None = None) -> dict[str, Any]:
        """Describe the access path ``query`` would use (see the planner)."""
        return self.planner.explain(query or {}, limit=limit)

    def count_documents(self, query: dict[str, Any] | None = None) -> int:
        """Number of documents matching ``query``."""
        if not query:
            return self.engine.count()
        return len(self._find_all(query).documents)

    # -- index management -------------------------------------------------------------

    def create_index(self, field_path: str, unique: bool = False) -> str:
        """Create a secondary index on ``field_path`` and backfill it."""
        index = self.indexes.create(field_path, unique=unique)
        for record_id, document, __ in self.engine.scan():
            index.add(record_id, document)
        return field_path

    def drop_index(self, field_path: str) -> bool:
        return self.indexes.drop(field_path)

    # -- statistics ----------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """A ``collStats``-style document including engine statistics."""
        engine_stats = self.engine.statistics()
        engine_stats["collection"] = self.name
        engine_stats["indexes"] = self.indexes.names()
        return engine_stats

    # -- internals -------------------------------------------------------------------------

    def _notify(self, operation: str, record_id: str,
                document: dict[str, Any] | None) -> None:
        if self.change_listener is not None:
            self.change_listener(operation, record_id, document)

    def index_for(self, field_path: str) -> SecondaryIndex | None:
        """The index usable for ``field_path`` (the ``_id`` index included)."""
        if field_path == "_id":
            return self._id_index
        return self.indexes.get(field_path)

    def record_ids(self) -> set[str]:
        """The live record-id set (planner plumbing for ``ID_LOOKUP``)."""
        return self._ids

    def _find_all(self, query: dict[str, Any],
                  limit: int | None = None) -> OperationResult:
        plan = self.planner.plan(query, limit=limit)
        documents: list[dict[str, Any]] = []
        read_cost = 0.0
        for record_id in plan.iter_candidates():
            with self.engine.locks.read(record_id):
                document, cost = self.engine.read(record_id)
            read_cost += cost
            if document is not None and matches(document, query):
                documents.append(document)
                if limit is not None and len(documents) >= limit:
                    break
        return OperationResult(documents=documents,
                               simulated_seconds=plan.current_lookup_cost() + read_cost,
                               matched_count=len(documents))

    def _find_first(self, query: dict[str, Any]) -> tuple[str | None, dict[str, Any] | None, float]:
        plan = self.planner.plan(query, limit=1)
        read_cost = 0.0
        for record_id in plan.iter_candidates():
            with self.engine.locks.read(record_id):
                document, cost = self.engine.read(record_id)
            read_cost += cost
            if document is not None and matches(document, query):
                return record_id, document, plan.current_lookup_cost() + read_cost
        return None, None, plan.current_lookup_cost() + read_cost

    def __len__(self) -> int:
        return self.engine.count()

    def __repr__(self) -> str:
        return f"Collection({self.name!r}, engine={self.engine.name!r}, documents={len(self)})"


def deep_copy_document(document: dict[str, Any]) -> dict[str, Any]:
    """Deep copy helper exported for tests."""
    return copy.deepcopy(document)
