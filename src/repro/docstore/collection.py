"""Collections: the CRUD surface of the document store.

A collection combines

* a storage engine instance (wiredTiger or mmapv1) holding the documents,
* an index catalog consulted for equality predicates and maintained on every
  write, and
* an ``_id`` primary index (a plain dictionary record-id map -- the engines
  themselves key records by the ``_id`` value).

Every operation returns an :class:`OperationResult` carrying the simulated
cost so workload drivers can account latency without real sleeping.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any

from repro.docstore.cursor import Cursor
from repro.docstore.documents import validate_document, with_id
from repro.docstore.engine_base import StorageEngine
from repro.docstore.indexes import IndexCatalog
from repro.docstore.matching import equality_value, matches, query_fields
from repro.docstore.update_ops import apply_update
from repro.errors import DocumentStoreError, DuplicateKeyError


@dataclass
class OperationResult:
    """Outcome of a single collection operation.

    Attributes:
        acknowledged: True for every completed operation.
        matched_count / modified_count / deleted_count / inserted_ids: the
            usual driver-level counters.
        simulated_seconds: total simulated service time charged by the engine.
        documents: result documents for read operations.
        shard_costs: per-shard cost breakdown, filled in by the sharding
            router when the operation ran against a cluster (empty for
            single-server operations).
    """

    acknowledged: bool = True
    matched_count: int = 0
    modified_count: int = 0
    deleted_count: int = 0
    inserted_ids: list[str] = field(default_factory=list)
    simulated_seconds: float = 0.0
    documents: list[dict[str, Any]] = field(default_factory=list)
    shard_costs: dict[str, float] = field(default_factory=dict)


class Collection:
    """A named set of documents stored in one engine."""

    def __init__(self, name: str, engine: StorageEngine):
        self.name = name
        self.engine = engine
        self.indexes = IndexCatalog()
        self._ids: set[str] = set()

    # -- writes -----------------------------------------------------------------

    def insert_one(self, document: dict[str, Any]) -> OperationResult:
        """Insert a single document (an ``_id`` is generated when missing)."""
        validate_document(document)
        stored = with_id(document)
        record_id = str(stored["_id"])
        if record_id in self._ids:
            raise DuplicateKeyError(
                f"duplicate _id {record_id!r} in collection {self.name!r}"
            )
        self.indexes.add_document(record_id, stored)
        with self.engine.locks.write(record_id):
            cost = self.engine.insert(record_id, stored)
            cost += self.engine.index_maintenance_cost(len(self.indexes))
        self._ids.add(record_id)
        return OperationResult(
            inserted_ids=[record_id], modified_count=0, simulated_seconds=cost
        )

    def insert_many(self, documents: list[dict[str, Any]]) -> OperationResult:
        """Insert several documents; cost is the sum of the individual inserts."""
        combined = OperationResult()
        for document in documents:
            result = self.insert_one(document)
            combined.inserted_ids.extend(result.inserted_ids)
            combined.simulated_seconds += result.simulated_seconds
        return combined

    def update_one(self, query: dict[str, Any], update: dict[str, Any]) -> OperationResult:
        """Apply ``update`` to the first document matching ``query``."""
        record_id, document, find_cost = self._find_first(query)
        if record_id is None:
            return OperationResult(matched_count=0, simulated_seconds=find_cost)
        new_document = apply_update(document, update)
        validate_document(new_document)
        self.indexes.remove_document(record_id, document)
        self.indexes.add_document(record_id, new_document)
        with self.engine.locks.write(record_id):
            cost = self.engine.update(record_id, new_document)
            cost += self.engine.index_maintenance_cost(len(self.indexes))
        return OperationResult(
            matched_count=1,
            modified_count=0 if new_document == document else 1,
            simulated_seconds=find_cost + cost,
        )

    def update_many(self, query: dict[str, Any], update: dict[str, Any]) -> OperationResult:
        """Apply ``update`` to every matching document."""
        matches_found = self._find_all(query)
        total_cost = matches_found.simulated_seconds
        modified = 0
        for document in matches_found.documents:
            record_id = str(document["_id"])
            new_document = apply_update(document, update)
            validate_document(new_document)
            self.indexes.remove_document(record_id, document)
            self.indexes.add_document(record_id, new_document)
            with self.engine.locks.write(record_id):
                total_cost += self.engine.update(record_id, new_document)
                total_cost += self.engine.index_maintenance_cost(len(self.indexes))
            if new_document != document:
                modified += 1
        return OperationResult(
            matched_count=len(matches_found.documents),
            modified_count=modified,
            simulated_seconds=total_cost,
        )

    def replace_one(self, query: dict[str, Any], replacement: dict[str, Any]) -> OperationResult:
        """Replace the first matching document wholesale."""
        if any(key.startswith("$") for key in replacement):
            raise DocumentStoreError("replacement documents may not contain operators")
        return self.update_one(query, replacement)

    def delete_one(self, query: dict[str, Any]) -> OperationResult:
        """Delete the first document matching ``query``."""
        record_id, document, find_cost = self._find_first(query)
        if record_id is None:
            return OperationResult(deleted_count=0, simulated_seconds=find_cost)
        self.indexes.remove_document(record_id, document)
        with self.engine.locks.write(record_id):
            cost = self.engine.delete(record_id)
        self._ids.discard(record_id)
        return OperationResult(deleted_count=1, simulated_seconds=find_cost + cost)

    def delete_many(self, query: dict[str, Any]) -> OperationResult:
        """Delete every document matching ``query``."""
        matches_found = self._find_all(query)
        total_cost = matches_found.simulated_seconds
        for document in matches_found.documents:
            record_id = str(document["_id"])
            self.indexes.remove_document(record_id, document)
            with self.engine.locks.write(record_id):
                total_cost += self.engine.delete(record_id)
            self._ids.discard(record_id)
        return OperationResult(
            deleted_count=len(matches_found.documents), simulated_seconds=total_cost
        )

    # -- reads ---------------------------------------------------------------------

    def find(self, query: dict[str, Any] | None = None,
             projection: dict[str, int] | None = None) -> Cursor:
        """Return a cursor over documents matching ``query`` (all when None)."""
        query = query or {}
        return Cursor(lambda: self._find_all(query).documents, projection)

    def find_one(self, query: dict[str, Any] | None = None) -> dict[str, Any] | None:
        """Return the first matching document or ``None``."""
        __, document, __cost = self._find_first(query or {})
        return document

    def find_with_cost(self, query: dict[str, Any] | None = None) -> OperationResult:
        """Like :meth:`find` but returns documents *and* the simulated cost."""
        return self._find_all(query or {})

    def count_documents(self, query: dict[str, Any] | None = None) -> int:
        """Number of documents matching ``query``."""
        if not query:
            return self.engine.count()
        return len(self._find_all(query).documents)

    # -- index management -------------------------------------------------------------

    def create_index(self, field_path: str, unique: bool = False) -> str:
        """Create a secondary index on ``field_path`` and backfill it."""
        index = self.indexes.create(field_path, unique=unique)
        for record_id, document, __ in self.engine.scan():
            index.add(record_id, document)
        return field_path

    def drop_index(self, field_path: str) -> bool:
        return self.indexes.drop(field_path)

    # -- statistics ----------------------------------------------------------------------

    def stats(self) -> dict[str, Any]:
        """A ``collStats``-style document including engine statistics."""
        engine_stats = self.engine.statistics()
        engine_stats["collection"] = self.name
        engine_stats["indexes"] = self.indexes.names()
        return engine_stats

    # -- internals -------------------------------------------------------------------------

    def _find_all(self, query: dict[str, Any]) -> OperationResult:
        candidates, lookup_cost = self._candidates(query)
        documents: list[dict[str, Any]] = []
        total_cost = lookup_cost
        for record_id in candidates:
            with self.engine.locks.read(record_id):
                document, cost = self.engine.read(record_id)
            total_cost += cost
            if document is not None and matches(document, query):
                documents.append(document)
        return OperationResult(documents=documents, simulated_seconds=total_cost,
                               matched_count=len(documents))

    def _find_first(self, query: dict[str, Any]) -> tuple[str | None, dict[str, Any] | None, float]:
        candidates, lookup_cost = self._candidates(query)
        total_cost = lookup_cost
        for record_id in candidates:
            with self.engine.locks.read(record_id):
                document, cost = self.engine.read(record_id)
            total_cost += cost
            if document is not None and matches(document, query):
                return record_id, document, total_cost
        return None, None, total_cost

    def _candidates(self, query: dict[str, Any]) -> tuple[list[str], float]:
        """Choose the candidate record ids for ``query`` using available indexes."""
        # Point lookup by _id.
        pinned, value = equality_value(query, "_id")
        if pinned:
            record_id = str(value)
            return ([record_id] if record_id in self._ids else []), 0.0
        # Equality over an indexed field.
        for field_path in query_fields(query):
            index = self.indexes.get(field_path)
            if index is None:
                continue
            pinned, value = equality_value(query, field_path)
            if pinned:
                cost = len(self.indexes) * self.engine.parameters.node_access
                return sorted(index.lookup(value)), cost
        # Full scan: charge the engine's scan cost.
        documents: list[str] = []
        scan_cost = 0.0
        for record_id, __, cost in self.engine.scan():
            documents.append(record_id)
            scan_cost += cost
        return documents, scan_cost

    def __len__(self) -> int:
        return self.engine.count()

    def __repr__(self) -> str:
        return f"Collection({self.name!r}, engine={self.engine.name!r}, documents={len(self)})"


def deep_copy_document(document: dict[str, Any]) -> dict[str, Any]:
    """Deep copy helper exported for tests."""
    return copy.deepcopy(document)
