"""The document database server: databases, collections and server commands.

A :class:`DocumentServer` plays the role of one ``mongod`` instance
configured with a specific storage engine.  Deployments in Chronos each wrap
one server instance, which is how the demo compares ``wiredtiger`` and
``mmapv1`` side by side.
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.docstore.collection import Collection
from repro.docstore.cost import CostParameters
from repro.docstore.engine_base import StorageEngine
from repro.docstore.mmapv1 import MmapV1Engine
from repro.docstore.wiredtiger import WiredTigerEngine
from repro.errors import DocumentStoreError, NotFoundError

_ENGINE_FACTORIES: dict[str, Callable[..., StorageEngine]] = {
    "wiredtiger": WiredTigerEngine,
    "mmapv1": MmapV1Engine,
}


class DatabaseNamespace:
    """A named database inside one server (a namespace for collections)."""

    def __init__(self, name: str, engine_factory: Callable[[], StorageEngine]):
        self.name = name
        self._engine_factory = engine_factory
        self._collections: dict[str, Collection] = {}
        # Guards get-or-create: two threads racing the first access of a
        # collection name must agree on one Collection (each carries its own
        # engine -- a loser's documents would live in an unreachable engine).
        self._create_lock = threading.Lock()

    def collection(self, name: str) -> Collection:
        """Return (creating on first use) the collection called ``name``."""
        existing = self._collections.get(name)
        if existing is not None:
            return existing
        with self._create_lock:
            existing = self._collections.get(name)
            if existing is None:
                existing = Collection(name, self._engine_factory())
                self._collections[name] = existing
        return existing

    def drop_collection(self, name: str) -> bool:
        return self._collections.pop(name, None) is not None

    def collection_names(self) -> list[str]:
        return sorted(self._collections)

    def stats(self) -> dict[str, Any]:
        return {
            "db": self.name,
            "collections": len(self._collections),
            "documents": sum(len(coll) for coll in self._collections.values()),
            "storage_bytes": sum(
                coll.engine.storage_bytes() for coll in self._collections.values()
            ),
        }

    def __getitem__(self, name: str) -> Collection:
        return self.collection(name)


class DocumentServer:
    """One simulated document-database server process.

    Args:
        storage_engine: ``"wiredtiger"`` or ``"mmapv1"``.
        cost_parameters: optional cost-model overrides.
        engine_options: extra keyword arguments passed to the engine
            constructor (e.g. ``cache_bytes`` for wiredTiger,
            ``padding_factor`` for mmapv1).
    """

    def __init__(
        self,
        storage_engine: str = "wiredtiger",
        cost_parameters: CostParameters | None = None,
        **engine_options: Any,
    ):
        if storage_engine not in _ENGINE_FACTORIES:
            raise DocumentStoreError(
                f"unknown storage engine {storage_engine!r}; "
                f"supported: {sorted(_ENGINE_FACTORIES)}"
            )
        self.storage_engine = storage_engine
        self._cost_parameters = cost_parameters
        self._engine_options = engine_options
        self._databases: dict[str, DatabaseNamespace] = {}
        # Same get-or-create discipline as DatabaseNamespace.collection().
        self._create_lock = threading.Lock()
        self._commands_executed = 0
        # Replication view of this process, maintained by the owning
        # ``ReplicaSetMember`` ({"set", "member_id", "role", "optime", ...});
        # None for a standalone server.
        self.replication: dict[str, Any] | None = None

    # -- namespace management ----------------------------------------------------

    def database(self, name: str) -> DatabaseNamespace:
        """Return (creating on first use) the database called ``name``."""
        existing = self._databases.get(name)
        if existing is not None:
            return existing
        with self._create_lock:
            existing = self._databases.get(name)
            if existing is None:
                existing = DatabaseNamespace(name, self._new_engine)
                self._databases[name] = existing
        return existing

    def drop_database(self, name: str) -> bool:
        return self._databases.pop(name, None) is not None

    def database_names(self) -> list[str]:
        return sorted(self._databases)

    def __getitem__(self, name: str) -> DatabaseNamespace:
        return self.database(name)

    # -- server commands -----------------------------------------------------------

    def run_command(self, command: dict[str, Any]) -> dict[str, Any]:
        """Execute an administrative command (subset of the MongoDB commands).

        Supported commands: ``ping``, ``serverStatus``, ``dbStats``,
        ``collStats``, ``buildInfo``, ``replSetGetStatus``.
        """
        self._commands_executed += 1
        if "ping" in command:
            return {"ok": 1}
        if "replSetGetStatus" in command:
            if self.replication is not None:
                return {"ok": 1, **self.replication}
            return {"ok": 1, "set": None, "role": "standalone", "members": []}
        if "buildInfo" in command:
            return {"ok": 1, "version": "4.0-sim", "storageEngines": sorted(_ENGINE_FACTORIES)}
        if "serverStatus" in command:
            return {"ok": 1, **self.server_status()}
        if "dbStats" in command:
            name = command["dbStats"]
            if name not in self._databases:
                raise NotFoundError(f"database {name!r} does not exist")
            return {"ok": 1, **self._databases[name].stats()}
        if "collStats" in command:
            namespace = command["collStats"]
            db_name, _, coll_name = namespace.partition(".")
            if db_name not in self._databases:
                raise NotFoundError(f"database {db_name!r} does not exist")
            database = self._databases[db_name]
            if coll_name not in database.collection_names():
                raise NotFoundError(f"collection {namespace!r} does not exist")
            return {"ok": 1, **database.collection(coll_name).stats()}
        raise DocumentStoreError(f"unsupported command {sorted(command)!r}")

    def server_status(self) -> dict[str, Any]:
        """Server-wide statistics (engine, databases, totals, replication role)."""
        return {
            "storageEngine": {"name": self.storage_engine},
            "databases": len(self._databases),
            "commands": self._commands_executed,
            "totalDocuments": sum(
                len(database.collection(name))
                for database in self._databases.values()
                for name in database.collection_names()
            ),
            "repl": dict(self.replication) if self.replication is not None
            else {"role": "standalone"},
        }

    # -- internals --------------------------------------------------------------------

    def _new_engine(self) -> StorageEngine:
        factory = _ENGINE_FACTORIES[self.storage_engine]
        if self._cost_parameters is not None:
            return factory(parameters=self._cost_parameters, **self._engine_options)
        return factory(**self._engine_options)
