"""The document database server: databases, collections and server commands.

A :class:`DocumentServer` plays the role of one ``mongod`` instance
configured with a specific storage engine.  Deployments in Chronos each wrap
one server instance, which is how the demo compares ``wiredtiger`` and
``mmapv1`` side by side.

Observability (PR 8): every server owns one :class:`MetricsRegistry` and one
:class:`Profiler`, shared by all of its collections.  ``server_status()``
reports the registry snapshot plus the server-wide plan-cache rollup and
per-collection lock statistics; ``run_command`` understands the MongoDB
profiler surface (``{"profile": level, "slowms": n}``, ``{"currentOp": 1}``,
``{"top": 1}``).
"""

from __future__ import annotations

import threading
from typing import Any, Callable

from repro.docstore.collection import Collection
from repro.docstore.cost import CostParameters
from repro.docstore.engine_base import StorageEngine
from repro.docstore.mmapv1 import MmapV1Engine
from repro.docstore.observability import MetricsRegistry, Profiler
from repro.docstore.wiredtiger import WiredTigerEngine
from repro.errors import DocumentStoreError, NotFoundError

_ENGINE_FACTORIES: dict[str, Callable[..., StorageEngine]] = {
    "wiredtiger": WiredTigerEngine,
    "mmapv1": MmapV1Engine,
}


class DatabaseNamespace:
    """A named database inside one server (a namespace for collections)."""

    def __init__(self, name: str, engine_factory: Callable[[], StorageEngine],
                 profiler: Profiler | None = None):
        self.name = name
        self._engine_factory = engine_factory
        self._profiler = profiler
        self._collections: dict[str, Collection] = {}
        # Guards get-or-create: two threads racing the first access of a
        # collection name must agree on one Collection (each carries its own
        # engine -- a loser's documents would live in an unreachable engine).
        self._create_lock = threading.Lock()

    def collection(self, name: str) -> Collection:
        """Return (creating on first use) the collection called ``name``."""
        existing = self._collections.get(name)
        if existing is not None:
            return existing
        with self._create_lock:
            existing = self._collections.get(name)
            if existing is None:
                existing = Collection(name, self._engine_factory(),
                                      profiler=self._profiler,
                                      namespace=f"{self.name}.{name}")
                self._collections[name] = existing
        return existing

    def drop_collection(self, name: str) -> bool:
        return self._collections.pop(name, None) is not None

    def collection_names(self) -> list[str]:
        return sorted(self._collections)

    def stats(self) -> dict[str, Any]:
        return {
            "db": self.name,
            "collections": len(self._collections),
            "documents": sum(len(coll) for coll in self._collections.values()),
            "storage_bytes": sum(
                coll.engine.storage_bytes() for coll in self._collections.values()
            ),
        }

    def __getitem__(self, name: str) -> Collection:
        return self.collection(name)


class DocumentServer:
    """One simulated document-database server process.

    Args:
        storage_engine: ``"wiredtiger"`` or ``"mmapv1"``.
        cost_parameters: optional cost-model overrides.
        engine_options: extra keyword arguments passed to the engine
            constructor (e.g. ``cache_bytes`` for wiredTiger,
            ``padding_factor`` for mmapv1).
    """

    def __init__(
        self,
        storage_engine: str = "wiredtiger",
        cost_parameters: CostParameters | None = None,
        **engine_options: Any,
    ):
        if storage_engine not in _ENGINE_FACTORIES:
            raise DocumentStoreError(
                f"unknown storage engine {storage_engine!r}; "
                f"supported: {sorted(_ENGINE_FACTORIES)}"
            )
        self.storage_engine = storage_engine
        self._cost_parameters = cost_parameters
        self._engine_options = engine_options
        self._databases: dict[str, DatabaseNamespace] = {}
        # Same get-or-create discipline as DatabaseNamespace.collection().
        self._create_lock = threading.Lock()
        self._commands_executed = 0
        # Replication view of this process, maintained by the owning
        # ``ReplicaSetMember`` ({"set", "member_id", "role", "optime", ...});
        # None for a standalone server.
        self.replication: dict[str, Any] | None = None
        # Observability substrate: one registry + profiler per server,
        # shared by every collection (profiling level 0 by default).
        self.metrics = MetricsRegistry()
        self.profiler = Profiler(self.metrics)

    # -- namespace management ----------------------------------------------------

    def database(self, name: str) -> DatabaseNamespace:
        """Return (creating on first use) the database called ``name``."""
        existing = self._databases.get(name)
        if existing is not None:
            return existing
        with self._create_lock:
            existing = self._databases.get(name)
            if existing is None:
                existing = DatabaseNamespace(name, self._new_engine,
                                             profiler=self.profiler)
                self._databases[name] = existing
        return existing

    def drop_database(self, name: str) -> bool:
        return self._databases.pop(name, None) is not None

    def database_names(self) -> list[str]:
        return sorted(self._databases)

    def __getitem__(self, name: str) -> DatabaseNamespace:
        return self.database(name)

    # -- profiling / metrics -------------------------------------------------------

    def set_profiling(self, level: int, slow_ms: float | None = None,
                      capacity: int | None = None) -> dict[str, Any]:
        """Set the profiling level (0 off, 1 slow ops only, 2 all ops)."""
        return self.profiler.set_profiling(level, slow_ms=slow_ms,
                                           capacity=capacity)

    def get_slow_ops(self, limit: int | None = None) -> list[dict[str, Any]]:
        """The slow-op log, oldest first (the ``system.profile`` analog)."""
        return self.profiler.slow_ops(limit)

    def current_ops(self) -> list[dict[str, Any]]:
        """Spans currently in flight (the ``currentOp`` analog)."""
        return self.profiler.current_ops()

    def top(self) -> dict[str, Any]:
        """Per-namespace, per-op usage totals (the ``top`` analog)."""
        return self.profiler.top()

    def metrics_snapshot(self) -> dict[str, Any]:
        """The metrics registry snapshot plus the planner/profiler rollups."""
        snapshot = self.metrics.snapshot()
        snapshot["planner"] = self.planner_rollup()
        snapshot["profiler"] = self.profiler.describe()
        return snapshot

    def planner_rollup(self) -> dict[str, int]:
        """Plan-cache counters summed across every collection on the server."""
        rollup = {"entries": 0, "hits": 0, "misses": 0, "fast_id_plans": 0,
                  "collections": 0}
        for database in list(self._databases.values()):
            for name in database.collection_names():
                stats = database.collection(name).planner.cache_stats()
                rollup["collections"] += 1
                for key in ("entries", "hits", "misses", "fast_id_plans"):
                    rollup[key] += stats[key]
        return rollup

    def locks_report(self) -> dict[str, dict[str, float]]:
        """Per-collection lock statistics (acquisitions, contentions, wait)."""
        report: dict[str, dict[str, float]] = {}
        for database in list(self._databases.values()):
            for name in database.collection_names():
                collection = database.collection(name)
                report[collection.namespace] = (
                    collection.engine.locks.stats.snapshot())
        return report

    # -- server commands -----------------------------------------------------------

    def run_command(self, command: dict[str, Any]) -> dict[str, Any]:
        """Execute an administrative command (subset of the MongoDB commands).

        Supported commands: ``ping``, ``serverStatus``, ``dbStats``,
        ``collStats``, ``buildInfo``, ``replSetGetStatus``, ``profile``,
        ``currentOp``, ``top``.
        """
        self._commands_executed += 1
        if "ping" in command:
            return {"ok": 1}
        if "replSetGetStatus" in command:
            if self.replication is not None:
                return {"ok": 1, **self.replication}
            return {"ok": 1, "set": None, "role": "standalone", "members": []}
        if "buildInfo" in command:
            return {"ok": 1, "version": "4.0-sim", "storageEngines": sorted(_ENGINE_FACTORIES)}
        if "serverStatus" in command:
            return {"ok": 1, **self.server_status()}
        if "profile" in command:
            level = command["profile"]
            if level == -1:  # query without changing, as in MongoDB
                return {"ok": 1, "was": self.profiler.level,
                        "level": self.profiler.level,
                        "slowms": self.profiler.slow_ms}
            return {"ok": 1, **self.set_profiling(level,
                                                  slow_ms=command.get("slowms"))}
        if "currentOp" in command:
            return {"ok": 1, "inprog": self.current_ops()}
        if "top" in command:
            return {"ok": 1, "totals": self.top()}
        if "dbStats" in command:
            name = command["dbStats"]
            if name not in self._databases:
                raise NotFoundError(f"database {name!r} does not exist")
            return {"ok": 1, **self._databases[name].stats()}
        if "collStats" in command:
            namespace = command["collStats"]
            db_name, _, coll_name = namespace.partition(".")
            if db_name not in self._databases:
                raise NotFoundError(f"database {db_name!r} does not exist")
            database = self._databases[db_name]
            if coll_name not in database.collection_names():
                raise NotFoundError(f"collection {namespace!r} does not exist")
            return {"ok": 1, **database.collection(coll_name).stats()}
        raise DocumentStoreError(f"unsupported command {sorted(command)!r}")

    def server_status(self) -> dict[str, Any]:
        """Server-wide statistics (engine, databases, totals, replication role)."""
        return {
            "storageEngine": {"name": self.storage_engine},
            "databases": len(self._databases),
            "commands": self._commands_executed,
            "totalDocuments": sum(
                len(database.collection(name))
                for database in self._databases.values()
                for name in database.collection_names()
            ),
            "repl": dict(self.replication) if self.replication is not None
            else {"role": "standalone"},
            "metrics": self.metrics_snapshot(),
            "locks": self.locks_report(),
        }

    # -- internals --------------------------------------------------------------------

    def _new_engine(self) -> StorageEngine:
        factory = _ENGINE_FACTORIES[self.storage_engine]
        if self._cost_parameters is not None:
            return factory(parameters=self._cost_parameters, **self._engine_options)
        return factory(**self._engine_options)
