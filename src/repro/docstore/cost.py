"""Deterministic cost model translating engine mechanisms into service times.

The original demo measures wall-clock behaviour of two real MongoDB storage
engines.  Re-running real MongoDB is not possible here, so each simulated
engine charges a *service time* per operation derived from the mechanisms
that actually differentiate the engines:

* CPU cost per operation (B-tree traversal and compression for wiredTiger,
  cheaper in-memory offset chasing for mmapv1),
* I/O cost proportional to the bytes written to or read from "disk"
  (compressed for wiredTiger, padded and uncompressed for mmapv1), and
* cache behaviour (wiredTiger's block cache and mmapv1's reliance on the OS
  page cache, which degrades once the padded data set outgrows memory).

All parameters live in :class:`CostParameters` so ablation benchmarks can
vary them.  The numbers are calibrated to plausible commodity-hardware
magnitudes (tens of microseconds per in-memory operation, ~100 MB/s journal
bandwidth) -- absolute values are not meant to match the paper's testbed,
only the comparative shape.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field


@dataclass(frozen=True)
class CostParameters:
    """Tunable constants of the engine cost model (all times in seconds)."""

    # Pure CPU cost of dispatching any operation.
    base_operation: float = 12e-6
    # CPU cost per B-tree node visited (wiredTiger) / extent hop (mmapv1).
    node_access: float = 1.5e-6
    # CPU cost of compressing/decompressing one kilobyte (wiredTiger only).
    compression_per_kb: float = 4e-6
    # Time to read one kilobyte from disk on a cache / page-cache miss.
    disk_read_per_kb: float = 90e-6
    # Time to append one kilobyte to the journal / data files.
    disk_write_per_kb: float = 35e-6
    # Extra cost when mmapv1 must relocate a document that outgrew its padding.
    document_move: float = 150e-6
    # Cost of updating one secondary index entry.
    index_maintenance: float = 6e-6
    # When > 0, every charge actually sleeps ``seconds * real_service_scale``
    # wall-clock time, turning simulated service time into real service time.
    # The sleep happens *while the caller's locks are held*, so lock
    # granularity genuinely drives multi-threaded wall-clock scaling: the
    # concurrency benchmark (E14) uses this to observe collection-level
    # writes flatline while document-level writes and latch-free reads
    # overlap.  Zero (the default) keeps every other benchmark and the test
    # suite instantaneous.
    real_service_scale: float = 0.0


@dataclass
class CostAccumulator:
    """Aggregates simulated costs per operation type for an engine instance."""

    parameters: CostParameters = field(default_factory=CostParameters)
    totals: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Counter updates take this lock so concurrent charges never lose
        # increments; the optional real-time sleep happens *outside* it so
        # accounting never serialises the service time it is modelling.
        self._mutex = threading.Lock()

    def charge(self, operation: str, seconds: float) -> float:
        """Record ``seconds`` of simulated service time for ``operation``.

        With ``parameters.real_service_scale > 0`` the call also sleeps the
        scaled duration, releasing the GIL -- whatever locks the caller holds
        across this call are what limit concurrent throughput.
        """
        with self._mutex:
            self.totals[operation] = self.totals.get(operation, 0.0) + seconds
            self.counts[operation] = self.counts.get(operation, 0) + 1
        scale = self.parameters.real_service_scale
        if scale > 0.0 and seconds > 0.0:
            time.sleep(seconds * scale)
        return seconds

    def charge_many(self, operation: str, seconds: float, count: int) -> float:
        """Record ``count`` operations worth ``seconds`` in one accumulation.

        Batch paths (``insert_batch``) use this so the per-operation counters
        stay identical to ``count`` individual :meth:`charge` calls without
        paying ``count`` dict updates.
        """
        if count <= 0:
            return 0.0
        with self._mutex:
            self.totals[operation] = self.totals.get(operation, 0.0) + seconds
            self.counts[operation] = self.counts.get(operation, 0) + count
        scale = self.parameters.real_service_scale
        if scale > 0.0 and seconds > 0.0:
            time.sleep(seconds * scale)
        return seconds

    @property
    def total_seconds(self) -> float:
        with self._mutex:
            return sum(self.totals.values())

    def snapshot(self) -> dict[str, dict[str, float]]:
        with self._mutex:
            return {
                operation: {
                    "count": self.counts[operation],
                    "seconds": self.totals[operation],
                }
                for operation in sorted(self.totals)
            }


def kilobytes(size_bytes: int) -> float:
    """Size in kilobytes as a float, never below a single sector's worth."""
    return max(size_bytes, 128) / 1024.0


@dataclass(frozen=True)
class ConcurrencyProfile:
    """How an engine's throughput scales with concurrent client threads.

    ``serial_write_fraction`` is the fraction of a write operation's service
    time spent under the engine-wide exclusive lock.  For a collection-level
    locking engine this is ~1.0 (writes fully serialise); for document-level
    locking it is small (journal append and shared structures only).
    ``parallel_efficiency`` models per-thread bookkeeping overhead.
    """

    serial_write_fraction: float
    serial_read_fraction: float
    parallel_efficiency: float

    def speedup(self, threads: int, write_ratio: float) -> float:
        """Return the effective speed-up factor at ``threads`` concurrent clients.

        This is an Amdahl-style model: the serial fraction of the workload is
        the service-time-weighted mix of the serialised parts of reads and
        writes.  The result is clamped to ``threads`` (can never exceed
        linear) and to at least 1.0.
        """
        if threads <= 1:
            return 1.0
        serial = (
            write_ratio * self.serial_write_fraction
            + (1.0 - write_ratio) * self.serial_read_fraction
        )
        serial = min(max(serial, 0.0), 1.0)
        amdahl = 1.0 / (serial + (1.0 - serial) / threads)
        efficient = 1.0 + (amdahl - 1.0) * self.parallel_efficiency
        return max(1.0, min(float(threads), efficient))
