"""Result analysis: metrics, aggregation, comparison and diagrams.

Chronos Control "has to offer a large set of basic analysis functions (e.g.,
different types of diagrams), support the extension by custom ones, and
provide standard metrics for measurements" (requirement vi).  This package
provides the standard metrics (execution time, throughput, latency
percentiles), grouping/aggregation over result sets, engine comparison
summaries, and bar / line / pie diagrams rendered as ASCII (for the terminal
examples) and SVG (for files), plus CSV/JSON export.
"""

from repro.analysis.aggregate import ResultTable, group_results, pivot
from repro.analysis.compare import compare_groups, speedup_table
from repro.analysis.diagrams import BarDiagram, Diagram, LineDiagram, PieDiagram, build_diagram
from repro.analysis.metrics import MetricSummary, latency_percentiles, summarize, throughput

__all__ = [
    "MetricSummary",
    "summarize",
    "throughput",
    "latency_percentiles",
    "ResultTable",
    "group_results",
    "pivot",
    "compare_groups",
    "speedup_table",
    "Diagram",
    "BarDiagram",
    "LineDiagram",
    "PieDiagram",
    "build_diagram",
]
