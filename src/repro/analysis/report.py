"""Evaluation reports: the result-analysis page (Fig. 3d) as a document.

The Chronos web UI shows, for a finished evaluation, the job table, the
configured diagrams and summary statistics.  :func:`evaluation_report` builds
the same content as a markdown document (optionally writing the diagrams as
SVG files next to it) directly from a Chronos Control instance, so archived
or scripted evaluations can be reviewed without the UI.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.analysis.aggregate import ResultTable, aggregate_metric, pivot
from repro.analysis.compare import compare_groups
from repro.analysis.diagrams import Diagram, diagram_from_spec
from repro.errors import ValidationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.control import ChronosControl


@dataclass
class EvaluationReport:
    """A rendered evaluation report."""

    evaluation_id: str
    title: str
    markdown: str
    diagrams: dict[str, Diagram] = field(default_factory=dict)
    results: list[dict[str, Any]] = field(default_factory=list)

    def write(self, directory: str | Path) -> Path:
        """Write the report (and its diagrams as SVG) into ``directory``.

        Returns the path of the markdown file.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        body = self.markdown
        for name, diagram in self.diagrams.items():
            svg_path = directory / f"{self.evaluation_id}-{_slug(name)}.svg"
            svg_path.write_text(diagram.render_svg(), encoding="utf-8")
            body += f"\n\n![{name}]({svg_path.name})"
        path = directory / f"{self.evaluation_id}-report.md"
        path.write_text(body + "\n", encoding="utf-8")
        return path


def evaluation_report(control: "ChronosControl", evaluation_id: str,
                      parameter_fields: list[str] | None = None,
                      metric_fields: list[str] | None = None) -> EvaluationReport:
    """Build the result-analysis report for ``evaluation_id``.

    The report uses the system's result configuration (metrics + diagram
    specifications) exactly like the web UI would; ``parameter_fields`` and
    ``metric_fields`` can override the columns of the job table.
    """
    evaluation = control.evaluations.get(evaluation_id)
    experiment = control.experiments.get(evaluation.experiment_id)
    system = control.systems.get(experiment.system_id)
    jobs = control.evaluations.jobs(evaluation_id)
    results = [result.data for result in control.results.for_jobs([job.id for job in jobs])]
    if not results:
        raise ValidationError(f"evaluation {evaluation_id!r} has no results to report on")

    metric_fields = metric_fields or list(system.result_config.get("metrics", []))
    parameter_fields = parameter_fields or sorted(
        {name for result in results for name in result.get("parameters", {})}
    )

    columns = [f"parameters.{name}" for name in parameter_fields] + metric_fields
    table = ResultTable.from_results(results, columns)

    lines = [
        f"# Evaluation report: {evaluation.name}",
        "",
        f"* evaluation: `{evaluation.id}` (status: {evaluation.status.value})",
        f"* experiment: `{experiment.name}` against system `{system.name}`",
        f"* jobs: {len(jobs)} ({sum(1 for j in jobs if j.status.value == 'finished')} finished)",
        "",
        "## Job results",
        "",
        table.to_markdown(),
        "",
        "## Metric summaries",
        "",
    ]
    for metric in metric_fields:
        try:
            stats = aggregate_metric(results, metric)
        except ValidationError:
            continue
        lines.append(f"* **{metric}**: mean {stats['mean']:,.2f}, "
                     f"min {stats['min']:,.2f}, max {stats['max']:,.2f}, "
                     f"p95 {stats['p95']:,.2f}")

    diagrams: dict[str, Diagram] = {}
    for spec in system.result_config.get("diagrams", []):
        resolved = _resolve_spec_fields(spec, results)
        try:
            diagram = diagram_from_spec(resolved, results)
        except ValidationError:
            continue
        diagrams[spec.get("title", spec["kind"])] = diagram
        lines += ["", f"## {spec.get('title', spec['kind'])}", "",
                  "```", diagram.render_ascii(), "```"]

    group_field = _comparison_group(system, results)
    if group_field and metric_fields:
        try:
            comparison = compare_groups(results, group_field, metric_fields[0])
            lines += ["", "## Comparison", "",
                      f"Winner on `{metric_fields[0]}`: **{comparison['winner']}** "
                      f"({comparison['factor']:.2f}x over {comparison['runner_up']})"]
        except ValidationError:
            pass

    return EvaluationReport(
        evaluation_id=evaluation.id,
        title=evaluation.name,
        markdown="\n".join(lines),
        diagrams=diagrams,
        results=results,
    )


def _resolve_spec_fields(spec: dict[str, Any], results: list[dict[str, Any]]) -> dict[str, Any]:
    """Map diagram spec fields onto result-document paths.

    System diagram specifications reference experiment parameters by bare name
    (e.g. ``threads``); results store them under ``parameters.<name>``.
    """
    def resolve(field_name: str | None) -> str | None:
        if field_name is None:
            return None
        if any(field_name in result for result in results):
            return field_name
        return f"parameters.{field_name}"

    resolved = dict(spec)
    resolved["x_field"] = resolve(spec.get("x_field"))
    resolved["y_field"] = resolve(spec.get("y_field"))
    resolved["group_field"] = resolve(spec.get("group_field"))
    return resolved


def _comparison_group(system, results: list[dict[str, Any]]) -> str | None:
    """Pick the grouping field for the winner comparison (first swept checkbox)."""
    for definition in system.parameters:
        if definition.get("kind") == "checkbox":
            name = definition["name"]
            values = {result.get("parameters", {}).get(name) for result in results}
            if len(values) > 1:
                return f"parameters.{name}"
    return None


def _slug(value: str) -> str:
    return "".join(ch if ch.isalnum() else "-" for ch in value.lower()).strip("-")
