"""Minimal SVG element helpers used by the diagram renderers."""

from __future__ import annotations

import math


def svg_document(width: int, height: int, elements: list[str]) -> str:
    """Wrap ``elements`` into a standalone SVG document."""
    body = "\n  ".join(elements)
    return (
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" '
        f'viewBox="0 0 {width} {height}">\n  '
        f'<rect width="{width}" height="{height}" fill="white"/>\n  '
        f"{body}\n</svg>"
    )


def svg_rect(x: float, y: float, width: float, height: float, fill: str = "#1f77b4") -> str:
    return (f'<rect x="{x:.1f}" y="{y:.1f}" width="{max(width, 0):.1f}" '
            f'height="{max(height, 0):.1f}" fill="{fill}"/>')


def svg_line(x1: float, y1: float, x2: float, y2: float, stroke: str = "#333333",
             width_px: float = 1.0) -> str:
    return (f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{stroke}" stroke-width="{width_px}"/>')


def svg_text(x: float, y: float, content: str, size: int = 12, fill: str = "#111111") -> str:
    escaped = (content.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;"))
    return (f'<text x="{x:.1f}" y="{y:.1f}" font-size="{size}" '
            f'font-family="sans-serif" fill="{fill}">{escaped}</text>')


def svg_wedge(cx: float, cy: float, radius: float, start_degrees: float,
              end_degrees: float, fill: str = "#1f77b4") -> str:
    """A pie-chart wedge from ``start_degrees`` to ``end_degrees``."""
    start = math.radians(start_degrees - 90)
    end = math.radians(end_degrees - 90)
    x1, y1 = cx + radius * math.cos(start), cy + radius * math.sin(start)
    x2, y2 = cx + radius * math.cos(end), cy + radius * math.sin(end)
    large_arc = 1 if (end_degrees - start_degrees) > 180 else 0
    return (f'<path d="M {cx:.1f} {cy:.1f} L {x1:.1f} {y1:.1f} '
            f'A {radius:.1f} {radius:.1f} 0 {large_arc} 1 {x2:.1f} {y2:.1f} Z" '
            f'fill="{fill}"/>')
