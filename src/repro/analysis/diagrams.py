"""Diagram types: bar, line and pie (Section 2.2).

Chronos Control visualises results with bar, line and pie diagrams.  Each
diagram type here carries its data (series of labelled points), can render
itself as ASCII art for the terminal examples, as an SVG document for files,
and exposes its data for tests.  The registry at the bottom supports the
paper's extension mechanism: custom diagram types can be registered at run
time and are then available to system result configurations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.analysis.svg import svg_document, svg_line, svg_rect, svg_text, svg_wedge
from repro.errors import ValidationError


@dataclass
class Diagram(ABC):
    """Base class of all diagrams."""

    title: str
    x_label: str = ""
    y_label: str = ""
    series: dict[str, list[tuple[Any, float]]] = field(default_factory=dict)

    def add_series(self, name: str, points: list[tuple[Any, float]]) -> "Diagram":
        """Add one named series of ``(x, y)`` points."""
        self.series[str(name)] = [(x, float(y)) for x, y in points]
        return self

    def add_point(self, series_name: str, x: Any, y: float) -> "Diagram":
        self.series.setdefault(str(series_name), []).append((x, float(y)))
        return self

    @abstractmethod
    def render_ascii(self, width: int = 60) -> str:
        """Render the diagram as ASCII art."""

    @abstractmethod
    def render_svg(self, width: int = 640, height: int = 360) -> str:
        """Render the diagram as an SVG document."""

    # -- shared helpers ----------------------------------------------------------------

    def _all_points(self) -> list[tuple[Any, float]]:
        points: list[tuple[Any, float]] = []
        for series_points in self.series.values():
            points.extend(series_points)
        return points

    def _require_data(self) -> None:
        if not self._all_points():
            raise ValidationError(f"diagram {self.title!r} has no data")


@dataclass
class BarDiagram(Diagram):
    """Grouped horizontal bars: one bar per (series, x) pair."""

    def render_ascii(self, width: int = 60) -> str:
        self._require_data()
        maximum = max(y for _, y in self._all_points()) or 1.0
        lines = [self.title, "=" * len(self.title)]
        for series_name, points in self.series.items():
            for x, y in points:
                bar = "#" * max(1, int((y / maximum) * width)) if y > 0 else ""
                label = f"{series_name}/{x}" if len(self.series) > 1 else str(x)
                lines.append(f"{label:>24} | {bar} {y:,.1f}")
        return "\n".join(lines)

    def render_svg(self, width: int = 640, height: int = 360) -> str:
        self._require_data()
        points = self._all_points()
        maximum = max(y for _, y in points) or 1.0
        bar_area = width - 160
        elements = [svg_text(10, 20, self.title, size=16)]
        y_offset = 50
        bar_height = max(12, min(28, (height - 80) // max(1, len(points))))
        for series_name, series_points in self.series.items():
            for x, y in series_points:
                bar_width = (y / maximum) * bar_area
                label = f"{series_name}/{x}" if len(self.series) > 1 else str(x)
                elements.append(svg_text(10, y_offset + bar_height * 0.75, label, size=11))
                elements.append(svg_rect(150, y_offset, bar_width, bar_height - 4,
                                         fill=_series_color(series_name)))
                elements.append(svg_text(155 + bar_width, y_offset + bar_height * 0.75,
                                         f"{y:,.1f}", size=11))
                y_offset += bar_height
        return svg_document(width, max(height, y_offset + 20), elements)


@dataclass
class LineDiagram(Diagram):
    """Line chart: one polyline per series over a numeric/ordinal x axis."""

    def render_ascii(self, width: int = 60, height: int = 12) -> str:
        self._require_data()
        lines = [self.title, "=" * len(self.title)]
        all_points = self._all_points()
        y_max = max(y for _, y in all_points) or 1.0
        for series_name, points in self.series.items():
            lines.append(f"-- {series_name}")
            for x, y in points:
                bar = "*" * max(1, int((y / y_max) * width)) if y > 0 else ""
                lines.append(f"{str(x):>12} | {bar} {y:,.1f}")
        if self.y_label:
            lines.append(f"(y: {self.y_label}, x: {self.x_label})")
        return "\n".join(lines)

    def render_svg(self, width: int = 640, height: int = 360) -> str:
        self._require_data()
        all_points = self._all_points()
        y_max = max(y for _, y in all_points) or 1.0
        x_values = sorted({x for x, _ in all_points}, key=_order_key)
        x_positions = {value: index for index, value in enumerate(x_values)}
        plot_width, plot_height, margin = width - 120, height - 100, 60

        elements = [svg_text(10, 20, self.title, size=16)]
        elements.append(svg_line(margin, height - 40, margin + plot_width, height - 40))
        elements.append(svg_line(margin, height - 40, margin, 40))
        for series_name, points in self.series.items():
            coordinates = []
            for x, y in points:
                px = margin + (x_positions[x] / max(1, len(x_values) - 1)) * plot_width
                py = (height - 40) - (y / y_max) * plot_height
                coordinates.append((px, py))
            for start, end in zip(coordinates, coordinates[1:]):
                elements.append(svg_line(start[0], start[1], end[0], end[1],
                                         stroke=_series_color(series_name), width_px=2))
            if coordinates:
                last = coordinates[-1]
                elements.append(svg_text(last[0] + 4, last[1], series_name, size=11))
        for value, index in x_positions.items():
            px = margin + (index / max(1, len(x_values) - 1)) * plot_width
            elements.append(svg_text(px, height - 22, str(value), size=10))
        return svg_document(width, height, elements)


@dataclass
class PieDiagram(Diagram):
    """Pie chart over the first series' values."""

    def render_ascii(self, width: int = 40) -> str:
        self._require_data()
        points = self._first_series()
        total = sum(y for _, y in points) or 1.0
        lines = [self.title, "=" * len(self.title)]
        for x, y in points:
            share = y / total
            bar = "o" * max(1, int(share * width))
            lines.append(f"{str(x):>16} | {bar} {share * 100:5.1f}%")
        return "\n".join(lines)

    def render_svg(self, width: int = 400, height: int = 400) -> str:
        self._require_data()
        points = self._first_series()
        total = sum(y for _, y in points) or 1.0
        center_x, center_y, radius = width / 2, height / 2 + 10, min(width, height) / 3
        elements = [svg_text(10, 20, self.title, size=16)]
        angle = 0.0
        for index, (x, y) in enumerate(points):
            share = y / total
            sweep = share * 360.0
            elements.append(svg_wedge(center_x, center_y, radius, angle, angle + sweep,
                                      fill=_palette(index)))
            elements.append(svg_text(10, 40 + index * 16, f"{x}: {share * 100:.1f}%", size=11))
            angle += sweep
        return svg_document(width, height, elements)

    def _first_series(self) -> list[tuple[Any, float]]:
        for points in self.series.values():
            return points
        return []


_DIAGRAM_TYPES: dict[str, Callable[..., Diagram]] = {
    "bar": BarDiagram,
    "line": LineDiagram,
    "pie": PieDiagram,
}


def register_diagram_type(name: str, factory: Callable[..., Diagram]) -> None:
    """Register a custom diagram type (the paper's extensibility hook)."""
    _DIAGRAM_TYPES[name.lower()] = factory


def available_diagram_types() -> list[str]:
    return sorted(_DIAGRAM_TYPES)


def build_diagram(kind: str, title: str, x_label: str = "", y_label: str = "") -> Diagram:
    """Instantiate a diagram of ``kind`` (bar/line/pie or a registered custom type)."""
    factory = _DIAGRAM_TYPES.get(kind.lower())
    if factory is None:
        raise ValidationError(
            f"unknown diagram type {kind!r}; available: {available_diagram_types()}"
        )
    return factory(title=title, x_label=x_label, y_label=y_label)


def diagram_from_spec(spec: dict[str, Any], results: list[dict[str, Any]]) -> Diagram:
    """Build a diagram from a system's diagram specification plus result documents."""
    from repro.analysis.aggregate import pivot

    diagram = build_diagram(spec["kind"], spec.get("title", "diagram"),
                            x_label=spec.get("x_field", ""), y_label=spec.get("y_field", ""))
    series = pivot(results, spec["x_field"], spec["y_field"], spec.get("group_field"))
    for name, points in series.items():
        diagram.add_series(str(name), points)
    return diagram


def _series_color(name: str) -> str:
    return _palette(abs(hash(name)) % 8)


def _palette(index: int) -> str:
    colors = ["#1f77b4", "#ff7f0e", "#2ca02c", "#d62728",
              "#9467bd", "#8c564b", "#e377c2", "#7f7f7f"]
    return colors[index % len(colors)]


def _order_key(value: Any) -> tuple:
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (0, value)
    return (2, str(value))
