"""Exporting analysed results: CSV, JSON and rendered diagram files."""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any, Iterable

from repro.analysis.aggregate import ResultTable
from repro.analysis.diagrams import Diagram


def results_to_csv(table: ResultTable) -> str:
    """Render a :class:`ResultTable` as CSV text."""
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=table.columns)
    writer.writeheader()
    for row in table.rows:
        writer.writerow({column: row.get(column) for column in table.columns})
    return buffer.getvalue()


def results_to_json(results: Iterable[dict[str, Any]], indent: int = 2) -> str:
    """Serialise raw result documents as pretty-printed JSON."""
    return json.dumps(list(results), sort_keys=True, indent=indent)


def write_csv(table: ResultTable, path: str | Path) -> Path:
    """Write a CSV export to ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(results_to_csv(table), encoding="utf-8")
    return path


def write_diagram_svg(diagram: Diagram, path: str | Path, width: int = 640,
                      height: int = 360) -> Path:
    """Render ``diagram`` to an SVG file at ``path``."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(diagram.render_svg(width=width, height=height), encoding="utf-8")
    return path
