"""Comparative analysis: who wins, by what factor, where do curves cross."""

from __future__ import annotations

from typing import Any, Iterable

from repro.analysis.aggregate import group_results, pivot
from repro.errors import ValidationError


def compare_groups(results: Iterable[dict[str, Any]], group_field: str,
                   metric_field: str, higher_is_better: bool = True) -> dict[str, Any]:
    """Compare the mean of ``metric_field`` between the groups of ``group_field``.

    Returns the per-group means, the winner and the winner's factor over the
    runner-up -- the headline numbers of the demo ("wiredTiger is N x faster
    than mmapv1 at this configuration").
    """
    results = list(results)
    groups = group_results(results, group_field)
    if len(groups) < 2:
        raise ValidationError("need at least two groups to compare")
    means: dict[Any, float] = {}
    for key, members in groups.items():
        values = [_metric(member, metric_field) for member in members]
        values = [value for value in values if value is not None]
        if not values:
            raise ValidationError(f"group {key!r} has no values for {metric_field!r}")
        means[key] = sum(values) / len(values)
    ordered = sorted(means.items(), key=lambda item: item[1], reverse=higher_is_better)
    winner, winner_value = ordered[0]
    runner_up, runner_value = ordered[1]
    factor = (winner_value / runner_value) if runner_value else float("inf")
    if not higher_is_better and winner_value:
        factor = runner_value / winner_value
    return {
        "metric": metric_field,
        "means": {str(key): value for key, value in means.items()},
        "winner": str(winner),
        "runner_up": str(runner_up),
        "factor": factor,
    }


def speedup_table(results: Iterable[dict[str, Any]], x_field: str, y_field: str,
                  group_field: str, baseline_group: str) -> list[dict[str, Any]]:
    """Per-x speed-up of every group over ``baseline_group``.

    Used by the storage-engine experiment to show the wiredTiger / mmapv1
    throughput ratio per thread count, including where (if anywhere) the
    curves cross.
    """
    series = pivot(results, x_field, y_field, group_field)
    if baseline_group not in series:
        raise ValidationError(f"baseline group {baseline_group!r} not present")
    baseline = dict(series[baseline_group])
    table: list[dict[str, Any]] = []
    for x_value, baseline_value in sorted(baseline.items(), key=lambda item: item[0]):
        row: dict[str, Any] = {x_field: x_value, baseline_group: baseline_value}
        for group, points in series.items():
            if group == baseline_group:
                continue
            value = dict(points).get(x_value)
            row[group] = value
            row[f"{group}_speedup"] = (value / baseline_value
                                       if value is not None and baseline_value else None)
        table.append(row)
    return table


def crossover_points(table: list[dict[str, Any]], speedup_column: str) -> list[Any]:
    """x values where a speed-up series crosses 1.0 (the curves swap winner)."""
    crossings: list[Any] = []
    previous: float | None = None
    for row in table:
        value = row.get(speedup_column)
        if value is None:
            continue
        if previous is not None and (previous - 1.0) * (value - 1.0) < 0:
            crossings.append(row)
        previous = value
    return crossings


def _metric(result: dict[str, Any], metric_field: str) -> float | None:
    current: Any = result
    for segment in metric_field.split("."):
        if not isinstance(current, dict) or segment not in current:
            return None
        current = current[segment]
    if isinstance(current, bool) or not isinstance(current, (int, float)):
        return None
    return float(current)
