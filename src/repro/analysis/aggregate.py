"""Aggregation of evaluation results into tables and pivots.

Works on plain result dictionaries (the ``data`` part of a
:class:`~repro.core.entities.Result`), so it can be used both inside Chronos
Control and on archived result bundles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

from repro.analysis.metrics import summarize
from repro.errors import ValidationError


def _resolve(document: dict[str, Any], path: str) -> Any:
    """Resolve a dotted path (e.g. ``parameters.threads``) in a result document."""
    current: Any = document
    for segment in path.split("."):
        if not isinstance(current, dict) or segment not in current:
            return None
        current = current[segment]
    return current


@dataclass
class ResultTable:
    """A flat table of rows (one per job result) with convenience accessors."""

    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)

    @classmethod
    def from_results(cls, results: Iterable[dict[str, Any]],
                     columns: list[str]) -> "ResultTable":
        """Project ``columns`` (dotted paths) out of every result document."""
        rows = []
        for result in results:
            rows.append({column: _resolve(result, column) for column in columns})
        return cls(columns=list(columns), rows=rows)

    def column(self, name: str) -> list[Any]:
        """All values of one column."""
        if name not in self.columns:
            raise ValidationError(f"unknown column {name!r}")
        return [row.get(name) for row in self.rows]

    def sort_by(self, name: str) -> "ResultTable":
        """A new table sorted by ``name`` (None values last)."""
        ordered = sorted(self.rows, key=lambda row: (row.get(name) is None, row.get(name)))
        return ResultTable(columns=list(self.columns), rows=ordered)

    def filter(self, predicate: Callable[[dict[str, Any]], bool]) -> "ResultTable":
        return ResultTable(columns=list(self.columns),
                           rows=[row for row in self.rows if predicate(row)])

    def to_markdown(self) -> str:
        """Render the table as GitHub-flavoured markdown."""
        header = "| " + " | ".join(self.columns) + " |"
        separator = "| " + " | ".join("---" for _ in self.columns) + " |"
        lines = [header, separator]
        for row in self.rows:
            lines.append("| " + " | ".join(_format_cell(row.get(column))
                                            for column in self.columns) + " |")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.rows)


def group_results(results: Iterable[dict[str, Any]],
                  group_field: str) -> dict[Any, list[dict[str, Any]]]:
    """Group result documents by the value at ``group_field`` (dotted path)."""
    groups: dict[Any, list[dict[str, Any]]] = {}
    for result in results:
        key = _resolve(result, group_field)
        groups.setdefault(key, []).append(result)
    return groups


def aggregate_metric(results: Iterable[dict[str, Any]], metric_field: str) -> dict[str, float]:
    """Summary statistics of ``metric_field`` over the result documents."""
    values = [
        value for value in (_resolve(result, metric_field) for result in results)
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    ]
    if not values:
        raise ValidationError(f"no numeric values found for {metric_field!r}")
    return summarize(values).as_dict()


def pivot(results: Iterable[dict[str, Any]], x_field: str, y_field: str,
          group_field: str | None = None) -> dict[Any, list[tuple[Any, float]]]:
    """Build ``group -> [(x, y), ...]`` series (the data behind a line diagram).

    When ``group_field`` is ``None`` a single series keyed ``"all"`` is
    returned.  Within each series the points are sorted by x.
    """
    series: dict[Any, list[tuple[Any, float]]] = {}
    for result in results:
        x_value = _resolve(result, x_field)
        y_value = _resolve(result, y_field)
        if x_value is None or y_value is None:
            continue
        key = _resolve(result, group_field) if group_field else "all"
        series.setdefault(key, []).append((x_value, float(y_value)))
    for key in series:
        series[key].sort(key=lambda point: (point[0] is None, point[0]))
    return series


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
