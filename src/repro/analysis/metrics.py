"""Standard metrics: execution time, throughput, latency statistics."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from repro.errors import ValidationError
from repro.util.stats import percentile


@dataclass(frozen=True)
class MetricSummary:
    """Summary statistics of one series of measurements."""

    count: int
    mean: float
    minimum: float
    maximum: float
    stddev: float
    p50: float
    p95: float
    p99: float

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "stddev": self.stddev,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
        }


def summarize(values: Iterable[float]) -> MetricSummary:
    """Summary statistics (mean, spread, percentiles) of ``values``."""
    data = sorted(float(value) for value in values)
    if not data:
        raise ValidationError("cannot summarise an empty series")
    count = len(data)
    mean = sum(data) / count
    variance = sum((value - mean) ** 2 for value in data) / count
    return MetricSummary(
        count=count,
        mean=mean,
        minimum=data[0],
        maximum=data[-1],
        stddev=math.sqrt(variance),
        p50=percentile(data, 50),
        p95=percentile(data, 95),
        p99=percentile(data, 99),
    )


def throughput(operation_count: int, elapsed_seconds: float) -> float:
    """Operations per second; zero elapsed time yields zero throughput."""
    if operation_count < 0 or elapsed_seconds < 0:
        raise ValidationError("operation_count and elapsed_seconds must be non-negative")
    if elapsed_seconds == 0:
        return 0.0
    return operation_count / elapsed_seconds


def latency_percentiles(latencies_seconds: Iterable[float],
                        ranks: tuple[float, ...] = (50, 95, 99)) -> dict[str, float]:
    """Latency percentiles in milliseconds keyed as ``p<rank>``."""
    data = sorted(float(value) for value in latencies_seconds)
    if not data:
        return {f"p{int(rank)}": 0.0 for rank in ranks}
    return {f"p{int(rank)}": percentile(data, rank) * 1000.0 for rank in ranks}


def execution_time(started_at: float, finished_at: float) -> float:
    """The paper's standard metric: wall-clock execution time of a job."""
    if finished_at < started_at:
        raise ValidationError("finished_at must not precede started_at")
    return finished_at - started_at
