"""An embedded key-value store with two engines (the second demo SuE).

* :class:`HashEngine` -- an in-memory hash table with write-through to a
  simulated data file: constant-time reads, writes pay a random-write cost.
* :class:`LogStructuredEngine` -- appends every write to a log and keeps an
  index; reads may have to look at stale entries, and a compaction pass
  reclaims space.  Writes are cheap (sequential), space amplification grows
  until compaction.

The store exposes ``get``/``put``/``delete``/``scan`` and per-operation
simulated costs, mirroring the document store's accounting so the same
Chronos analysis pipeline can compare runs.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import DocumentStoreError


@dataclass(frozen=True)
class KvCostParameters:
    """Cost constants of the key-value engines (seconds)."""

    base_operation: float = 5e-6
    random_write_per_kb: float = 60e-6
    sequential_write_per_kb: float = 20e-6
    read_per_kb: float = 15e-6
    compaction_per_entry: float = 2e-6


def _size_kb(value: str) -> float:
    return max(len(value.encode("utf-8")), 64) / 1024.0


class KvEngine(ABC):
    """Interface of a key-value storage engine."""

    name = "abstract"

    def __init__(self, parameters: KvCostParameters | None = None):
        self.parameters = parameters or KvCostParameters()
        self.simulated_seconds = 0.0
        self.operations = 0

    @abstractmethod
    def put(self, key: str, value: str) -> float:
        """Store ``value`` under ``key``; returns the simulated cost."""

    @abstractmethod
    def get(self, key: str) -> tuple[str | None, float]:
        """Return ``(value, cost)``; value is None when the key is absent."""

    @abstractmethod
    def delete(self, key: str) -> float:
        """Remove ``key``; returns the simulated cost."""

    @abstractmethod
    def scan(self) -> Iterator[tuple[str, str]]:
        """Iterate over live key/value pairs."""

    @abstractmethod
    def storage_bytes(self) -> int:
        """Simulated on-disk footprint."""

    @abstractmethod
    def count(self) -> int:
        """Number of live keys."""

    def _charge(self, cost: float) -> float:
        self.simulated_seconds += cost
        self.operations += 1
        return cost

    def statistics(self) -> dict[str, Any]:
        return {
            "engine": self.name,
            "keys": self.count(),
            "storage_bytes": self.storage_bytes(),
            "operations": self.operations,
            "simulated_seconds": self.simulated_seconds,
        }


class HashEngine(KvEngine):
    """Hash-table engine: constant-time lookups, random-write update cost."""

    name = "hash"

    def __init__(self, parameters: KvCostParameters | None = None):
        super().__init__(parameters)
        self._data: dict[str, str] = {}

    def put(self, key: str, value: str) -> float:
        self._data[key] = value
        cost = self.parameters.base_operation + _size_kb(value) * self.parameters.random_write_per_kb
        return self._charge(cost)

    def get(self, key: str) -> tuple[str | None, float]:
        value = self._data.get(key)
        cost = self.parameters.base_operation
        if value is not None:
            cost += _size_kb(value) * self.parameters.read_per_kb
        return value, self._charge(cost)

    def delete(self, key: str) -> float:
        self._data.pop(key, None)
        return self._charge(self.parameters.base_operation)

    def scan(self) -> Iterator[tuple[str, str]]:
        yield from sorted(self._data.items())

    def storage_bytes(self) -> int:
        return sum(len(key) + len(value) for key, value in self._data.items())

    def count(self) -> int:
        return len(self._data)


class LogStructuredEngine(KvEngine):
    """Append-only engine with an in-memory index and periodic compaction."""

    name = "log"

    def __init__(self, parameters: KvCostParameters | None = None,
                 compaction_threshold: float = 2.0):
        super().__init__(parameters)
        if compaction_threshold <= 1.0:
            raise DocumentStoreError("compaction_threshold must be greater than 1")
        self._log: list[tuple[str, str | None]] = []
        self._index: dict[str, int] = {}
        self._compaction_threshold = compaction_threshold
        self.compactions = 0

    def put(self, key: str, value: str) -> float:
        self._log.append((key, value))
        self._index[key] = len(self._log) - 1
        cost = (self.parameters.base_operation
                + _size_kb(value) * self.parameters.sequential_write_per_kb)
        cost += self._maybe_compact()
        return self._charge(cost)

    def get(self, key: str) -> tuple[str | None, float]:
        cost = self.parameters.base_operation
        position = self._index.get(key)
        if position is None:
            return None, self._charge(cost)
        value = self._log[position][1]
        if value is not None:
            cost += _size_kb(value) * self.parameters.read_per_kb
        return value, self._charge(cost)

    def delete(self, key: str) -> float:
        if key in self._index:
            self._log.append((key, None))
            self._index[key] = len(self._log) - 1
        cost = self.parameters.base_operation + self._maybe_compact()
        return self._charge(cost)

    def scan(self) -> Iterator[tuple[str, str]]:
        for key in sorted(self._index):
            value = self._log[self._index[key]][1]
            if value is not None:
                yield key, value

    def storage_bytes(self) -> int:
        return sum(len(key) + len(value or "") for key, value in self._log)

    def count(self) -> int:
        return sum(1 for key in self._index if self._log[self._index[key]][1] is not None)

    def compact(self) -> float:
        """Rewrite the log keeping only the latest live entry per key."""
        entries = list(self.scan())
        cost = len(self._log) * self.parameters.compaction_per_entry
        self._log = [(key, value) for key, value in entries]
        self._index = {key: position for position, (key, _) in enumerate(self._log)}
        self.compactions += 1
        return cost

    def _maybe_compact(self) -> float:
        live = max(1, self.count())
        if len(self._log) / live >= self._compaction_threshold and len(self._log) > 16:
            return self.compact()
        return 0.0


class KeyValueStore:
    """The key-value SuE: one engine plus a tiny client API."""

    def __init__(self, engine: str = "hash"):
        if engine == "hash":
            self.engine: KvEngine = HashEngine()
        elif engine == "log":
            self.engine = LogStructuredEngine()
        else:
            raise DocumentStoreError(f"unknown key-value engine {engine!r}")

    def put(self, key: str, value: str) -> float:
        return self.engine.put(key, value)

    def get(self, key: str) -> str | None:
        value, _ = self.engine.get(key)
        return value

    def get_with_cost(self, key: str) -> tuple[str | None, float]:
        return self.engine.get(key)

    def delete(self, key: str) -> float:
        return self.engine.delete(key)

    def scan(self) -> list[tuple[str, str]]:
        return list(self.engine.scan())

    def statistics(self) -> dict[str, Any]:
        return self.engine.statistics()
