"""A second, simpler System under Evaluation: an embedded key-value store.

The Chronos architecture (Fig. 1) supports many different SuEs at the same
time.  To exercise that requirement, this package provides a second SuE
independent of the document store: a key-value store with two interchangeable
engines (hash table and log-structured with compaction), its own simulated
cost model and statistics.
"""

from repro.kvstore.store import HashEngine, KeyValueStore, LogStructuredEngine

__all__ = ["KeyValueStore", "HashEngine", "LogStructuredEngine"]
