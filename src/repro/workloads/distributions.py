"""Key-access distributions used by the workload generators.

These follow the YCSB distribution family: uniform, zipfian (scrambled),
latest (zipfian over the most recently inserted keys) and hotspot.  All
generators draw from an explicit :class:`random.Random` so traces are
reproducible from the experiment parameters (requirement iv).
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod

from repro.errors import ValidationError

_ZIPFIAN_CONSTANT = 0.99


class KeyDistribution(ABC):
    """Draws integer keys in ``[0, item_count)``."""

    def __init__(self, item_count: int):
        if item_count <= 0:
            raise ValidationError("item_count must be positive")
        self.item_count = item_count

    @abstractmethod
    def next_key(self, rng: random.Random) -> int:
        """Draw the next key."""

    def grow(self, new_item_count: int) -> None:
        """Notify the distribution that the key space grew (after inserts)."""
        if new_item_count > self.item_count:
            self.item_count = new_item_count


class UniformGenerator(KeyDistribution):
    """Every key is equally likely."""

    def next_key(self, rng: random.Random) -> int:
        return rng.randrange(self.item_count)


class ZipfianGenerator(KeyDistribution):
    """Zipfian-distributed keys, scrambled over the key space.

    Uses the Gray/Jim analytic approximation used by YCSB: popular items are
    requested far more often than unpopular ones, with exponent
    ``theta`` = 0.99.  The raw zipfian rank is scrambled with a multiplicative
    hash so that popular keys are spread over the whole key space.
    """

    def __init__(self, item_count: int, theta: float = _ZIPFIAN_CONSTANT):
        super().__init__(item_count)
        self.theta = theta
        self._recompute(item_count)

    def _recompute(self, n: int) -> None:
        self._n = n
        self._zeta_n = _zeta(n, self.theta)
        self._zeta_2 = _zeta(2, self.theta)
        self._alpha = 1.0 / (1.0 - self.theta)
        self._eta = (1 - (2.0 / n) ** (1 - self.theta)) / (1 - self._zeta_2 / self._zeta_n)

    def grow(self, new_item_count: int) -> None:
        if new_item_count > self.item_count:
            super().grow(new_item_count)
            self._recompute(new_item_count)

    def next_rank(self, rng: random.Random) -> int:
        """Draw a zipfian rank (0 is the most popular item), unscrambled."""
        u = rng.random()
        uz = u * self._zeta_n
        if uz < 1.0:
            rank = 0
        elif uz < 1.0 + 0.5 ** self.theta:
            rank = 1
        else:
            rank = int(self._n * (self._eta * u - self._eta + 1) ** self._alpha)
        return min(rank, self._n - 1)

    def next_key(self, rng: random.Random) -> int:
        # Scramble so hot keys are spread across the key space.
        return (self.next_rank(rng) * 2654435761) % self.item_count


class LatestGenerator(ZipfianGenerator):
    """Skewed towards the most recently inserted keys (YCSB workload D).

    Rank 0 (the most popular rank) maps onto the newest key, rank 1 onto the
    second newest, and so on -- without scrambling, so recency is preserved.
    """

    def next_key(self, rng: random.Random) -> int:
        rank = self.next_rank(rng) % self.item_count
        return (self.item_count - 1) - rank


class HotspotGenerator(KeyDistribution):
    """A fraction of operations targets a small "hot" subset of the keys."""

    def __init__(self, item_count: int, hot_fraction: float = 0.2,
                 hot_operation_fraction: float = 0.8):
        super().__init__(item_count)
        if not 0 < hot_fraction <= 1 or not 0 <= hot_operation_fraction <= 1:
            raise ValidationError("hotspot fractions must lie in (0, 1]")
        self.hot_fraction = hot_fraction
        self.hot_operation_fraction = hot_operation_fraction

    def next_key(self, rng: random.Random) -> int:
        hot_count = max(1, int(self.item_count * self.hot_fraction))
        if rng.random() < self.hot_operation_fraction:
            return rng.randrange(hot_count)
        if hot_count >= self.item_count:
            return rng.randrange(self.item_count)
        return hot_count + rng.randrange(self.item_count - hot_count)


def make_distribution(name: str, item_count: int) -> KeyDistribution:
    """Factory: build a distribution by its YCSB-style name."""
    name = name.lower()
    if name == "uniform":
        return UniformGenerator(item_count)
    if name == "zipfian":
        return ZipfianGenerator(item_count)
    if name == "latest":
        return LatestGenerator(item_count)
    if name == "hotspot":
        return HotspotGenerator(item_count)
    raise ValidationError(f"unknown key distribution {name!r}")


def _zeta(n: int, theta: float) -> float:
    # Direct summation is fine for the item counts the benchmarks use; for
    # very large n an Euler-Maclaurin approximation keeps it cheap.
    if n <= 100000:
        return sum(1.0 / (i ** theta) for i in range(1, n + 1))
    head = sum(1.0 / (i ** theta) for i in range(1, 100001))
    # Integral approximation of the tail.
    tail = ((n ** (1 - theta)) - (100000 ** (1 - theta))) / (1 - theta)
    return head + tail


def approximate_zipf_constant(n: int, theta: float = _ZIPFIAN_CONSTANT) -> float:
    """Expose the normalisation constant for tests of the distribution shape."""
    return _zeta(n, theta)


def chi_square_uniformity(samples: list[int], buckets: int) -> float:
    """Chi-square statistic of ``samples`` against a uniform distribution.

    Used by property tests: uniform samples should have a low statistic,
    zipfian samples a much higher one.
    """
    if not samples or buckets <= 1:
        return 0.0
    counts = [0] * buckets
    for sample in samples:
        counts[sample % buckets] += 1
    expected = len(samples) / buckets
    return sum((count - expected) ** 2 / expected for count in counts)
