"""Synthetic record generation for the document-store benchmarks."""

from __future__ import annotations

import random
import string
from typing import Any

from repro.errors import ValidationError

_ALPHABET = string.ascii_lowercase + string.digits


class RecordGenerator:
    """Generates YCSB-style documents: ``user<N>`` keys with payload fields.

    Each record has ``field_count`` string fields of ``field_length``
    characters, plus a small set of typed attributes (numeric counter,
    category, flag) so that query-based workloads have something meaningful
    to filter and aggregate on.
    """

    def __init__(self, field_count: int = 10, field_length: int = 100,
                 categories: int = 10):
        if field_count <= 0 or field_length <= 0:
            raise ValidationError("field_count and field_length must be positive")
        self.field_count = field_count
        self.field_length = field_length
        self.categories = max(1, categories)

    def key(self, index: int) -> str:
        """The primary key of record ``index``."""
        return f"user{index}"

    def record(self, index: int, rng: random.Random) -> dict[str, Any]:
        """Generate the document for record ``index``."""
        document: dict[str, Any] = {"_id": self.key(index)}
        for field_index in range(self.field_count):
            document[f"field{field_index}"] = self._payload(rng)
        document["counter"] = index
        document["category"] = f"cat{index % self.categories}"
        document["active"] = bool(index % 2)
        return document

    def update_fragment(self, rng: random.Random) -> dict[str, Any]:
        """An update document replacing one random payload field."""
        field_index = rng.randrange(self.field_count)
        return {"$set": {f"field{field_index}": self._payload(rng)}}

    def growing_update(self, rng: random.Random, growth_factor: int = 3) -> dict[str, Any]:
        """An update that grows the document (stresses mmapv1 padding moves)."""
        field_index = rng.randrange(self.field_count)
        payload = "".join(rng.choices(_ALPHABET, k=self.field_length * growth_factor))
        return {"$set": {f"field{field_index}": payload}}

    def approximate_record_bytes(self) -> int:
        """Rough serialised size of one generated record."""
        return self.field_count * (self.field_length + 12) + 64

    def _payload(self, rng: random.Random) -> str:
        return "".join(rng.choices(_ALPHABET, k=self.field_length))
