"""Workload generation and benchmark clients for the Systems under Evaluation.

This package plays the role of the evaluation clients in the original demo:
it generates synthetic records and request streams (YCSB-style key
distributions and operation mixes) and drives the document store, measuring
throughput and latency from the engines' simulated service times.
"""

from repro.workloads.distributions import (
    HotspotGenerator,
    KeyDistribution,
    LatestGenerator,
    UniformGenerator,
    ZipfianGenerator,
    make_distribution,
)
from repro.workloads.generator import RecordGenerator
from repro.workloads.runner import BenchmarkResult, DocumentBenchmark, WorkloadSpec
from repro.workloads.ycsb import CORE_WORKLOADS, ycsb_workload

__all__ = [
    "KeyDistribution",
    "UniformGenerator",
    "ZipfianGenerator",
    "LatestGenerator",
    "HotspotGenerator",
    "make_distribution",
    "RecordGenerator",
    "WorkloadSpec",
    "DocumentBenchmark",
    "BenchmarkResult",
    "CORE_WORKLOADS",
    "ycsb_workload",
]
