"""The document-store benchmark client.

This is the reproduction's equivalent of the MongoDB evaluation client of the
original demo: it loads a collection with synthetic records, warms the
engine's caches, runs a timed operation mix, and reports throughput and
latency percentiles.

Timing model: every collection operation returns the simulated service time
charged by the storage engine.  Single-threaded latency is that service
time; with ``threads`` concurrent clients the aggregate throughput is scaled
by the engine's :class:`~repro.docstore.cost.ConcurrencyProfile` (an
Amdahl-style model of its lock granularity), and per-operation latency gains
a queueing component for the serialised fraction.  This keeps runs fast and
deterministic while preserving the comparative shape between wiredTiger and
mmapv1 that the demo shows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.docstore.client import CollectionHandle, DocumentClient
from repro.docstore.observability import MetricsSampler
from repro.docstore.topology import (
    DocumentDeployment,
    TopologySpec,
    build_topology,
    topology_of,
)
from repro.errors import ValidationError
from repro.util.stats import mean, percentile
from repro.workloads.distributions import KeyDistribution, make_distribution
from repro.workloads.generator import RecordGenerator
from repro.workloads.ycsb import OperationMix


@dataclass
class WorkloadSpec:
    """Parameters of one benchmark run (one Chronos job in the demo).

    Attributes:
        record_count: documents loaded before the measured phase.
        operation_count: operations in the measured phase.
        threads: number of concurrent client threads to model.
        mix: operation mix (reads/updates/inserts/scans/RMW).
        distribution: key distribution name (uniform/zipfian/latest/hotspot).
        field_count / field_length: record shape.
        warmup_operations: read operations issued before measuring.
        scan_length: documents returned per scan operation (the limit pushed
            into the range query a scan issues).
        seed: RNG seed making the run reproducible.
        shards: number of shards when the workload targets a sharded
            cluster (1 means a single server).
        shard_key: shard key of the benchmark collection.
        shard_strategy: chunk placement strategy (``"hash"`` or ``"range"``).
        replicas: replica-set members per deployment (1 means unreplicated;
            with ``shards > 1`` every shard becomes a replica set).
        write_concern: ``1`` .. ``replicas`` or ``"majority"``.
        read_preference: ``"primary"`` / ``"secondary"`` / ``"nearest"``.
        replication_lag: oplog entries secondaries may trail behind.
        profile_level: operation profiling level applied to the deployment
            before the run (0 off, 1 slow ops only, 2 all ops).
        slow_ms: slow-op threshold in simulated milliseconds (only
            meaningful with ``profile_level`` > 0).
    """

    record_count: int = 1000
    operation_count: int = 2000
    threads: int = 1
    mix: OperationMix = field(default_factory=lambda: OperationMix(read=0.95, update=0.05))
    distribution: str = "zipfian"
    field_count: int = 10
    field_length: int = 100
    warmup_operations: int = 100
    scan_length: int = 10
    seed: int = 42
    shards: int = 1
    shard_key: str = "_id"
    shard_strategy: str = "hash"
    replicas: int = 1
    write_concern: int | str = 1
    read_preference: str = "primary"
    replication_lag: int = 0
    profile_level: int = 0
    slow_ms: float = 100.0

    def __post_init__(self) -> None:
        if self.record_count <= 0 or self.operation_count <= 0:
            raise ValidationError("record_count and operation_count must be positive")
        if self.threads <= 0:
            raise ValidationError("threads must be positive")
        if self.profile_level not in (0, 1, 2):
            raise ValidationError("profile_level must be 0, 1 or 2")
        if self.slow_ms < 0:
            raise ValidationError("slow_ms must be non-negative")
        self.topology()  # the topology layer validates every deployment field

    def topology(self, storage_engine: str = "wiredtiger") -> TopologySpec:
        """The deployment shape this workload targets, as first-class data."""
        return TopologySpec(
            shards=self.shards,
            shard_key=self.shard_key,
            shard_strategy=self.shard_strategy,
            replicas=self.replicas,
            write_concern=self.write_concern,
            read_preference=self.read_preference,
            replication_lag=self.replication_lag,
            storage_engine=storage_engine,
        )


@dataclass
class BenchmarkResult:
    """Measurements of one benchmark run."""

    engine: str
    topology: str
    threads: int
    shards: int
    replicas: int
    operations: int
    simulated_seconds: float
    throughput_ops_per_sec: float
    latency_avg_ms: float
    latency_p50_ms: float
    latency_p95_ms: float
    latency_p99_ms: float
    operation_counts: dict[str, int] = field(default_factory=dict)
    engine_statistics: dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> dict[str, Any]:
        """JSON-compatible form (what the MongoDB agent uploads to Chronos)."""
        return {
            "engine": self.engine,
            "topology": self.topology,
            "threads": self.threads,
            "shards": self.shards,
            "replicas": self.replicas,
            "operations": self.operations,
            "simulated_seconds": self.simulated_seconds,
            "throughput_ops_per_sec": self.throughput_ops_per_sec,
            "latency_avg_ms": self.latency_avg_ms,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p95_ms": self.latency_p95_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "operation_counts": dict(self.operation_counts),
            "engine_statistics": dict(self.engine_statistics),
        }


class DocumentBenchmark:
    """Loads, warms up and measures one document deployment with one workload.

    The deployment may be a single :class:`DocumentServer`, a
    :class:`~repro.docstore.replication.replica_set.ReplicaSet` or a
    :class:`~repro.docstore.sharding.cluster.ShardedCluster`; all expose the
    surface :class:`~repro.docstore.client.DocumentClient` needs.

    ``operation_hook`` (when set) fires with the operation index before each
    measured operation -- failure-injection drivers use it to kill or
    partition replica-set members at a precise point of the run.
    """

    def __init__(self, server: DocumentDeployment, spec: WorkloadSpec,
                 database: str = "benchmark", collection: str = "usertable",
                 topology: TopologySpec | None = None):
        self.server = server
        self.spec = spec
        # Topology reporting always comes from the topology layer: either the
        # spec the deployment was built from, or one derived from the object
        # when a caller hands in a hand-built server.
        self.topology = topology or topology_of(server)
        self.operation_hook: Any = None
        self.client = DocumentClient(server)
        self.database = database
        self.collection = collection
        self.handle: CollectionHandle = self.client.collection(database, collection)
        self.generator = RecordGenerator(spec.field_count, spec.field_length)
        self._rng = random.Random(spec.seed)
        self._distribution: KeyDistribution = make_distribution(
            spec.distribution, spec.record_count
        )
        self._inserted = spec.record_count
        self.sampler: MetricsSampler | None = None
        if spec.profile_level > 0:
            self.server.set_profiling(spec.profile_level, slow_ms=spec.slow_ms)

    @classmethod
    def for_spec(cls, spec: WorkloadSpec, storage_engine: str = "wiredtiger",
                 database: str = "benchmark", collection: str = "usertable",
                 **engine_options) -> "DocumentBenchmark":
        """Build the benchmark and its deployment from the spec alone.

        Delegates to the topology layer: the spec's deployment fields become
        a :class:`TopologySpec` and :func:`build_topology` decides which
        deployment class that shape maps onto.
        """
        return cls.for_topology(spec.topology(storage_engine), spec,
                                database=database, collection=collection,
                                **engine_options)

    @classmethod
    def for_topology(cls, topology: TopologySpec, spec: WorkloadSpec,
                     database: str = "benchmark", collection: str = "usertable",
                     **engine_options) -> "DocumentBenchmark":
        """Build the benchmark against the deployment ``topology`` describes.

        ``topology`` alone decides the deployment shape; ``spec``'s mirrored
        deployment fields (``shards``, ``replicas``, ...) are not consulted
        for construction or reporting and need not agree with it.
        """
        server = build_topology(topology, **engine_options)
        return cls(server, spec, database=database, collection=collection,
                   topology=topology)

    # -- observability ------------------------------------------------------------------

    def attach_sampler(self, interval_seconds: float = 0.25,
                       max_samples: int = 600) -> MetricsSampler:
        """Attach an FTDC-style metrics sampler pumped by the run loop.

        The sampler snapshots the deployment's full metrics registry at most
        every ``interval_seconds`` of wall clock, into a bounded in-memory
        series callers can dump as JSON (:meth:`MetricsSampler.as_dict`).
        An initial baseline sample is taken immediately.
        """
        self.sampler = MetricsSampler(self.server.metrics_snapshot,
                                      interval_seconds=interval_seconds,
                                      max_samples=max_samples)
        self.sampler.sample()
        return self.sampler

    def slow_ops(self, limit: int | None = None) -> list[dict[str, Any]]:
        """The deployment's merged slow-op log (empty while profiling is off)."""
        return self.server.get_slow_ops(limit)

    # -- phases ------------------------------------------------------------------------

    #: Documents per ``insert_many`` batch during the load phase -- large
    #: enough to amortise per-batch bookkeeping, small enough to bound memory.
    LOAD_BATCH_SIZE = 1000

    def load(self) -> float:
        """Load phase: insert ``record_count`` documents in batches.

        The batches ride the engines' true batch-insert path (one lock
        acquisition round and amortised index accounting per batch); the
        simulated cost is identical to inserting one by one.  Returns
        simulated seconds.
        """
        total = 0.0
        for start in range(0, self.spec.record_count, self.LOAD_BATCH_SIZE):
            stop = min(start + self.LOAD_BATCH_SIZE, self.spec.record_count)
            batch = [self.generator.record(index, self._rng)
                     for index in range(start, stop)]
            total += self.handle.insert_many(batch).simulated_seconds
        self.handle.create_index("category")
        if self.spec.mix.analytics_fraction > 0:
            # Top-k counter ranges ride an ordered index walk instead of a
            # full scan plus in-memory sort.
            self.handle.create_index("counter")
        if self.topology.is_sharded:
            # Settle chunk splits and balancing before the measured phase;
            # the migrations this round performs are charged to the load.
            summary = self.server.maintain(self.database, self.collection)
            total += summary.get("simulated_seconds", 0.0)
        return total

    def warm_up(self) -> float:
        """Warm-up phase: touch hot keys so caches are populated."""
        total = 0.0
        for _ in range(self.spec.warmup_operations):
            key = self.generator.key(self._distribution.next_key(self._rng))
            self.handle.find_one({"_id": key})
        for value in self.client.latencies("read"):
            total += value
        self.client.reset_latencies()
        return total

    def run(self) -> BenchmarkResult:
        """Measured phase: execute the operation mix and compute the metrics."""
        latencies: list[float] = []
        counts = {"read": 0, "update": 0, "insert": 0, "scan": 0,
                  "read_modify_write": 0, "grouped_count": 0, "top_k": 0}
        sampler = self.sampler
        for index in range(self.spec.operation_count):
            if self.operation_hook is not None:
                self.operation_hook(index)
            operation = self._choose_operation()
            latencies.append(self._execute(operation))
            counts[operation] += 1
            if sampler is not None:
                sampler.maybe_sample()
        if sampler is not None:
            sampler.sample()
        return self._summarise(latencies, counts)

    def execute_full(self) -> BenchmarkResult:
        """Convenience: load, warm up and run."""
        self.load()
        self.warm_up()
        return self.run()

    # -- internals ----------------------------------------------------------------------

    def _choose_operation(self) -> str:
        roll = self._rng.random()
        mix = self.spec.mix
        if roll < mix.read:
            return "read"
        roll -= mix.read
        if roll < mix.update:
            return "update"
        roll -= mix.update
        if roll < mix.insert:
            return "insert"
        roll -= mix.insert
        if roll < mix.scan:
            return "scan"
        roll -= mix.scan
        if roll < mix.grouped_count:
            return "grouped_count"
        roll -= mix.grouped_count
        if roll < mix.top_k:
            return "top_k"
        return "read_modify_write"

    def _execute(self, operation: str) -> float:
        key = self.generator.key(self._distribution.next_key(self._rng))
        if operation == "read":
            return self.handle.find_with_cost({"_id": key}).simulated_seconds
        if operation == "update":
            update = self.generator.update_fragment(self._rng)
            return self.handle.update_one({"_id": key}, update).simulated_seconds
        if operation == "insert":
            record = self.generator.record(self._inserted, self._rng)
            self._inserted += 1
            self._distribution.grow(self._inserted)
            return self.handle.insert_one(record).simulated_seconds
        if operation == "scan":
            # A true YCSB range scan: one ordered range query from a random
            # start key, limited to scan_length documents.  The planner turns
            # it into an INDEX_RANGE scan of the _id index; on a range-sharded
            # cluster the router contacts only the shards owning overlapping
            # chunks.
            start_key = self.generator.key(self._distribution.next_key(self._rng))
            result = self.handle.find_with_cost(
                {"_id": {"$gte": start_key}}, limit=self.spec.scan_length)
            return result.simulated_seconds
        if operation == "grouped_count":
            # Dashboard-style rollup: per-category count and counter total of
            # the active records.  On a cluster the router ships only one
            # partial accumulator row per category per shard.
            result = self.handle.aggregate_with_cost([
                {"$match": {"active": True}},
                {"$group": {"_id": "$category",
                            "count": {"$count": {}},
                            "total": {"$sum": "$counter"}}},
            ])
            return result.simulated_seconds
        if operation == "top_k":
            # Top-k from a random start: the counter index satisfies the sort
            # and the limit rides down into the walk (and onto every shard).
            start = self._distribution.next_key(self._rng)
            result = self.handle.aggregate_with_cost([
                {"$match": {"counter": {"$gte": start}}},
                {"$sort": {"counter": 1}},
                {"$limit": self.spec.scan_length},
            ])
            return result.simulated_seconds
        # read-modify-write
        read_cost = self.handle.find_with_cost({"_id": key}).simulated_seconds
        update = self.generator.update_fragment(self._rng)
        write_cost = self.handle.update_one({"_id": key}, update).simulated_seconds
        return read_cost + write_cost

    def _summarise(self, latencies: list[float], counts: dict[str, int]) -> BenchmarkResult:
        engine = self.handle.engine
        threads = self.spec.threads
        write_ratio = self.spec.mix.write_fraction
        # Clusters and replica sets model their own concurrency; a plain
        # server falls back to its engine's profile.
        topology = self.topology
        speedup_model = getattr(self.server, "speedup", None)
        if speedup_model is not None:
            speedup = speedup_model(threads, write_ratio)
        else:
            speedup = engine.concurrency.speedup(threads, write_ratio)

        total_service = sum(latencies)
        wall_clock = total_service / speedup if speedup > 0 else total_service
        throughput = len(latencies) / wall_clock if wall_clock > 0 else 0.0

        # Per-operation latency grows with queueing on the serialised fraction.
        contention_factor = threads / speedup if speedup > 0 else 1.0
        adjusted = sorted(value * contention_factor for value in latencies)
        return BenchmarkResult(
            engine=engine.name,
            topology=topology.kind,
            threads=threads,
            shards=topology.shards,
            replicas=topology.replicas,
            operations=len(latencies),
            simulated_seconds=wall_clock,
            throughput_ops_per_sec=throughput,
            latency_avg_ms=mean(adjusted) * 1000.0,
            latency_p50_ms=percentile(adjusted, 50) * 1000.0,
            latency_p95_ms=percentile(adjusted, 95) * 1000.0,
            latency_p99_ms=percentile(adjusted, 99) * 1000.0,
            operation_counts=counts,
            engine_statistics=self.handle.stats(),
        )
