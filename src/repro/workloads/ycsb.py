"""The YCSB core workload definitions (A-F).

The paper positions Chronos next to benchmark suites such as YCSB and
OLTP-Bench; the YCSB core workloads are implemented here both to exercise
the document store with realistic mixes and to drive experiment E7.

Each workload is a named operation mix plus a key distribution:

* A - update heavy: 50% reads, 50% updates, zipfian.
* B - read mostly: 95% reads, 5% updates, zipfian.
* C - read only: 100% reads, zipfian.
* D - read latest: 95% reads, 5% inserts, latest distribution.
* E - short ranges: 95% scans, 5% inserts, zipfian.
* F - read-modify-write: 50% reads, 50% read-modify-writes, zipfian.

Beyond the six core workloads, workload G is an analytics mix built on the
aggregation pipeline: grouped counts over the ``category`` field and top-k
range queries, with a trickle of point reads -- the kind of dashboard
traffic the demo's monitoring panels issue against the store.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ValidationError


@dataclass(frozen=True)
class OperationMix:
    """Fractions of each operation type; must sum to 1."""

    read: float = 0.0
    update: float = 0.0
    insert: float = 0.0
    scan: float = 0.0
    read_modify_write: float = 0.0
    grouped_count: float = 0.0
    top_k: float = 0.0

    def __post_init__(self) -> None:
        total = (self.read + self.update + self.insert + self.scan
                 + self.read_modify_write + self.grouped_count + self.top_k)
        if abs(total - 1.0) > 1e-9:
            raise ValidationError(f"operation mix must sum to 1.0, got {total}")

    @property
    def write_fraction(self) -> float:
        """Fraction of operations that take a write lock."""
        return self.update + self.insert + self.read_modify_write

    def as_dict(self) -> dict[str, float]:
        return {
            "read": self.read,
            "update": self.update,
            "insert": self.insert,
            "scan": self.scan,
            "read_modify_write": self.read_modify_write,
            "grouped_count": self.grouped_count,
            "top_k": self.top_k,
        }

    @property
    def analytics_fraction(self) -> float:
        """Fraction of operations that run an aggregation pipeline."""
        return self.grouped_count + self.top_k


@dataclass(frozen=True)
class YcsbWorkload:
    """One named YCSB core workload."""

    name: str
    mix: OperationMix
    distribution: str
    description: str


CORE_WORKLOADS: dict[str, YcsbWorkload] = {
    "A": YcsbWorkload(
        "A", OperationMix(read=0.5, update=0.5), "zipfian",
        "Update heavy: session-store recording recent actions"),
    "B": YcsbWorkload(
        "B", OperationMix(read=0.95, update=0.05), "zipfian",
        "Read mostly: photo tagging"),
    "C": YcsbWorkload(
        "C", OperationMix(read=1.0), "zipfian",
        "Read only: user profile cache"),
    "D": YcsbWorkload(
        "D", OperationMix(read=0.95, insert=0.05), "latest",
        "Read latest: user status updates"),
    "E": YcsbWorkload(
        "E", OperationMix(scan=0.95, insert=0.05), "zipfian",
        "Short ranges: threaded conversations"),
    "F": YcsbWorkload(
        "F", OperationMix(read=0.5, read_modify_write=0.5), "zipfian",
        "Read-modify-write: user database"),
    "G": YcsbWorkload(
        "G", OperationMix(read=0.1, grouped_count=0.45, top_k=0.45), "zipfian",
        "Analytics: grouped counts and top-k dashboards"),
}


def ycsb_workload(name: str) -> YcsbWorkload:
    """Return the core workload called ``name`` (case-insensitive)."""
    key = name.upper()
    if key not in CORE_WORKLOADS:
        raise ValidationError(
            f"unknown YCSB workload {name!r}; available: {sorted(CORE_WORKLOADS)}"
        )
    return CORE_WORKLOADS[key]


def mix_from_ratio(ratio: str) -> OperationMix:
    """Build a read/update mix from a ratio string such as ``"95:5"``.

    The first part is the read fraction, the second the update fraction --
    the format the MongoDB demo experiment uses for its query mix parameter.
    """
    from repro.core.parameters import parse_ratio

    fractions = parse_ratio(ratio)
    if len(fractions) != 2:
        raise ValidationError(f"read/write ratio must have two parts, got {ratio!r}")
    read, update = fractions
    return OperationMix(read=read, update=update)
