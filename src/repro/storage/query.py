"""Predicate objects for selecting rows in the embedded relational store.

Predicates are small composable objects (``eq``, ``gt``, ``and_`` ...) instead
of SQL strings: Chronos Control only ever issues point and range lookups over
its metadata tables, and explicit objects keep the store trivially safe from
injection while remaining easy to index-optimise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable


class Predicate:
    """Base class of all predicates."""

    def matches(self, row: dict[str, Any]) -> bool:
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "Predicate":
        return And([self, other])

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or([self, other])


@dataclass(frozen=True)
class Comparison(Predicate):
    """Compare a single column against a constant."""

    column: str
    op: str
    value: Any

    _OPS: dict[str, Callable[[Any, Any], bool]] = None  # type: ignore[assignment]

    def matches(self, row: dict[str, Any]) -> bool:
        actual = row.get(self.column)
        if self.op == "in":
            return actual in self.value
        if actual is None:
            # NULL never satisfies a comparison except equality with None.
            return self.op == "eq" and self.value is None
        if self.op == "eq":
            return actual == self.value
        if self.op == "ne":
            return actual != self.value
        if self.op == "gt":
            return actual > self.value
        if self.op == "gte":
            return actual >= self.value
        if self.op == "lt":
            return actual < self.value
        if self.op == "lte":
            return actual <= self.value
        raise ValueError(f"unknown comparison operator {self.op!r}")


@dataclass(frozen=True)
class And(Predicate):
    parts: tuple[Predicate, ...]

    def __init__(self, parts: Iterable[Predicate]):
        object.__setattr__(self, "parts", tuple(parts))

    def matches(self, row: dict[str, Any]) -> bool:
        return all(part.matches(row) for part in self.parts)


@dataclass(frozen=True)
class Or(Predicate):
    parts: tuple[Predicate, ...]

    def __init__(self, parts: Iterable[Predicate]):
        object.__setattr__(self, "parts", tuple(parts))

    def matches(self, row: dict[str, Any]) -> bool:
        return any(part.matches(row) for part in self.parts)


def eq(column: str, value: Any) -> Comparison:
    """Column equals value."""
    return Comparison(column, "eq", value)


def ne(column: str, value: Any) -> Comparison:
    """Column does not equal value."""
    return Comparison(column, "ne", value)


def gt(column: str, value: Any) -> Comparison:
    """Column is greater than value."""
    return Comparison(column, "gt", value)


def gte(column: str, value: Any) -> Comparison:
    """Column is greater than or equal to value."""
    return Comparison(column, "gte", value)


def lt(column: str, value: Any) -> Comparison:
    """Column is less than value."""
    return Comparison(column, "lt", value)


def lte(column: str, value: Any) -> Comparison:
    """Column is less than or equal to value."""
    return Comparison(column, "lte", value)


def in_(column: str, values: Iterable[Any]) -> Comparison:
    """Column is one of ``values``."""
    return Comparison(column, "in", tuple(values))


def and_(*parts: Predicate) -> Predicate:
    """All of ``parts`` must match."""
    return And(parts)


def or_(*parts: Predicate) -> Predicate:
    """At least one of ``parts`` must match."""
    return Or(parts)


def equality_columns(predicate: Predicate | None) -> dict[str, Any]:
    """Extract top-level ``column == constant`` terms from a predicate.

    The table uses this to answer conjunctive queries from an index instead of
    scanning.  Only ``eq`` comparisons that must hold for the whole predicate
    (i.e. at the top level or inside a top-level ``And``) are returned.
    """
    if predicate is None:
        return {}
    if isinstance(predicate, Comparison) and predicate.op == "eq":
        return {predicate.column: predicate.value}
    if isinstance(predicate, And):
        merged: dict[str, Any] = {}
        for part in predicate.parts:
            merged.update(equality_columns(part))
        return merged
    return {}
