"""Secondary index structures for the embedded relational store."""

from __future__ import annotations

import bisect
from typing import Any, Iterator

from repro.errors import ConflictError


class HashIndex:
    """Equality index mapping a column value to the set of row keys."""

    def __init__(self, column: str, unique: bool = False):
        self.column = column
        self.unique = unique
        self._entries: dict[Any, set[Any]] = {}

    def insert(self, value: Any, row_key: Any) -> None:
        """Register ``row_key`` under ``value``.

        Raises :class:`~repro.errors.ConflictError` when a unique constraint
        would be violated.
        """
        bucket = self._entries.setdefault(_hashable(value), set())
        if self.unique and value is not None and bucket and row_key not in bucket:
            raise ConflictError(
                f"duplicate value {value!r} for unique column {self.column!r}"
            )
        bucket.add(row_key)

    def remove(self, value: Any, row_key: Any) -> None:
        key = _hashable(value)
        bucket = self._entries.get(key)
        if not bucket:
            return
        bucket.discard(row_key)
        if not bucket:
            del self._entries[key]

    def lookup(self, value: Any) -> set[Any]:
        """Return the row keys stored under ``value`` (possibly empty)."""
        return set(self._entries.get(_hashable(value), set()))

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._entries.values())


class OrderedIndex:
    """Sorted index supporting range scans over one column.

    Values are kept in a sorted list of ``(value, row_key)`` pairs; NULL
    values are not indexed (consistent with the hash index semantics where a
    NULL never matches a comparison).
    """

    def __init__(self, column: str):
        self.column = column
        self._pairs: list[tuple[Any, Any]] = []

    def insert(self, value: Any, row_key: Any) -> None:
        if value is None:
            return
        bisect.insort(self._pairs, (value, _order_key(row_key)))

    def remove(self, value: Any, row_key: Any) -> None:
        if value is None:
            return
        pair = (value, _order_key(row_key))
        index = bisect.bisect_left(self._pairs, pair)
        if index < len(self._pairs) and self._pairs[index] == pair:
            del self._pairs[index]

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[Any]:
        """Yield row keys whose value lies in ``[low, high]`` (inclusive by default)."""
        for value, order_key in self._pairs:
            if low is not None:
                if value < low or (value == low and not include_low):
                    continue
            if high is not None:
                if value > high or (value == high and not include_high):
                    break
            # The order key is ``(type name, original row key)``.
            yield order_key[1]

    def __len__(self) -> int:
        return len(self._pairs)


def _hashable(value: Any) -> Any:
    """Convert un-hashable JSON values into a hashable surrogate."""
    if isinstance(value, (list, tuple)):
        return tuple(_hashable(item) for item in value)
    if isinstance(value, dict):
        return tuple(sorted((key, _hashable(item)) for key, item in value.items()))
    return value


def _order_key(row_key: Any) -> Any:
    """Make heterogeneous row keys comparable inside the sorted list."""
    return (type(row_key).__name__, row_key)
