"""Transactions with rollback for the embedded relational store.

The store supports single-writer transactions: a transaction buffers its
writes as an undo journal so that any failure (including mid-transaction
exceptions in Chronos Control's service layer) leaves the metadata store in
its pre-transaction state.  Commit appends one WAL record covering every
operation, making the transaction atomic on disk as well.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import TransactionError


class Transaction:
    """A unit of work against a :class:`~repro.storage.database.Database`.

    Instances are created via :meth:`Database.transaction` and used as context
    managers::

        with db.transaction() as txn:
            txn.insert("jobs", {...})
            txn.update("evaluations", "eval-1", {"status": "running"})
    """

    def __init__(self, database: "Database"):  # noqa: F821 - forward reference
        self._database = database
        self._undo: list[Callable[[], None]] = []
        self._operations: list[dict[str, Any]] = []
        self._finished = False

    # -- operations ----------------------------------------------------------

    def insert(self, table: str, row: dict[str, Any]) -> dict[str, Any]:
        """Insert ``row`` into ``table`` within this transaction."""
        self._ensure_active()
        stored = self._database.table(table).insert(row)
        key = stored[self._database.table(table).schema.primary_key]
        self._undo.append(lambda: self._database.table(table).delete(key))
        self._operations.append({"op": "insert", "table": table, "row": stored})
        return stored

    def update(self, table: str, key: Any, changes: dict[str, Any]) -> dict[str, Any]:
        """Update the row with primary key ``key`` in ``table``."""
        self._ensure_active()
        before = self._database.table(table).get(key)
        updated = self._database.table(table).update(key, changes)
        self._undo.append(
            lambda: self._database.table(table).update(key, before)
        )
        self._operations.append(
            {"op": "update", "table": table, "key": key, "changes": changes}
        )
        return updated

    def delete(self, table: str, key: Any) -> dict[str, Any]:
        """Delete the row with primary key ``key`` from ``table``."""
        self._ensure_active()
        removed = self._database.table(table).delete(key)
        self._undo.append(lambda: self._database.table(table).insert(removed))
        self._operations.append({"op": "delete", "table": table, "key": key})
        return removed

    # -- lifecycle -------------------------------------------------------------

    def commit(self) -> None:
        """Make the transaction durable."""
        self._ensure_active()
        self._finished = True
        if self._operations:
            self._database._log_commit(self._operations)

    def rollback(self) -> None:
        """Undo every operation performed so far."""
        if self._finished:
            return
        self._finished = True
        for undo in reversed(self._undo):
            undo()

    def __enter__(self) -> "Transaction":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self.commit()
        else:
            self.rollback()
        return False

    def _ensure_active(self) -> None:
        if self._finished:
            raise TransactionError("transaction is already committed or rolled back")
