"""Write-ahead log and snapshot persistence for the embedded store.

Durability model: every committed mutation is appended to a JSON-lines log.
On start-up the database replays the newest snapshot (if any) and then the
log records written after it.  ``checkpoint`` writes a fresh snapshot and
truncates the log.  This mirrors (in miniature) the redo-log + checkpoint
design of the MySQL instance backing the original Chronos Control and gives
the reproduction a concrete crash-recovery path to test (requirement iii).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterator

from repro.errors import StorageError

_SNAPSHOT_FILE = "snapshot.json"
_LOG_FILE = "wal.jsonl"


class WriteAheadLog:
    """Append-only JSON-lines log stored in a directory."""

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._log_path = self.directory / _LOG_FILE
        self._snapshot_path = self.directory / _SNAPSHOT_FILE
        self._log_handle = None

    # -- log records -------------------------------------------------------

    def append(self, record: dict[str, Any]) -> None:
        """Append one record and flush it to the operating system."""
        handle = self._ensure_handle()
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.flush()
        os.fsync(handle.fileno())

    def replay(self) -> Iterator[dict[str, Any]]:
        """Yield every record appended since the last checkpoint."""
        if not self._log_path.exists():
            return
        with self._log_path.open("r", encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    # A torn final write (crash mid-append) is tolerated; any
                    # other malformed record indicates real corruption.
                    remaining = handle.read().strip()
                    if remaining:
                        raise StorageError(
                            f"corrupt WAL record at line {line_number} "
                            f"of {self._log_path}"
                        ) from None
                    return

    # -- snapshots ----------------------------------------------------------

    def write_snapshot(self, state: dict[str, Any]) -> None:
        """Atomically persist a full snapshot and truncate the log."""
        tmp_path = self._snapshot_path.with_suffix(".tmp")
        with tmp_path.open("w", encoding="utf-8") as handle:
            json.dump(state, handle, sort_keys=True)
            handle.flush()
            os.fsync(handle.fileno())
        tmp_path.replace(self._snapshot_path)
        self._truncate_log()

    def read_snapshot(self) -> dict[str, Any] | None:
        """Return the latest snapshot, or ``None`` if none exists."""
        if not self._snapshot_path.exists():
            return None
        with self._snapshot_path.open("r", encoding="utf-8") as handle:
            return json.load(handle)

    def close(self) -> None:
        if self._log_handle is not None:
            self._log_handle.close()
            self._log_handle = None

    # -- internals -----------------------------------------------------------

    def _ensure_handle(self):
        if self._log_handle is None:
            self._log_handle = self._log_path.open("a", encoding="utf-8")
        return self._log_handle

    def _truncate_log(self) -> None:
        self.close()
        if self._log_path.exists():
            self._log_path.unlink()


class NullLog:
    """No-op log used for purely in-memory databases."""

    def append(self, record: dict[str, Any]) -> None:  # noqa: D102
        return

    def replay(self) -> Iterator[dict[str, Any]]:  # noqa: D102
        return iter(())

    def write_snapshot(self, state: dict[str, Any]) -> None:  # noqa: D102
        return

    def read_snapshot(self) -> dict[str, Any] | None:  # noqa: D102
        return None

    def close(self) -> None:  # noqa: D102
        return
