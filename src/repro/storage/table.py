"""Heap table with primary key and secondary indexes."""

from __future__ import annotations

import copy
from typing import Any, Callable, Iterable, Iterator

from repro.errors import ConflictError, NotFoundError, StorageError
from repro.storage.index import HashIndex, OrderedIndex
from repro.storage.query import Predicate, equality_columns
from repro.storage.schema import TableSchema


class Table:
    """A single table: rows keyed by primary key, with index maintenance.

    Rows are stored as plain dictionaries.  All returned rows are deep copies
    so callers can never corrupt the store by mutating results in place.
    """

    def __init__(self, schema: TableSchema):
        self.schema = schema
        self._rows: dict[Any, dict[str, Any]] = {}
        self._hash_indexes: dict[str, HashIndex] = {}
        self._ordered_indexes: dict[str, OrderedIndex] = {}
        for column in schema.unique:
            if column != schema.primary_key:
                self._hash_indexes[column] = HashIndex(column, unique=True)
        for column in schema.indexes:
            if column not in self._hash_indexes and column != schema.primary_key:
                self._hash_indexes[column] = HashIndex(column, unique=False)
                self._ordered_indexes[column] = OrderedIndex(column)

    # -- basic properties -------------------------------------------------

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: Any) -> bool:
        return key in self._rows

    # -- mutation ---------------------------------------------------------

    def insert(self, row: dict[str, Any]) -> dict[str, Any]:
        """Insert a row; returns the stored (normalised) row."""
        normalised = self.schema.normalise_row(row)
        key = normalised.get(self.schema.primary_key)
        if key is None:
            raise StorageError(
                f"insert into {self.name!r} is missing primary key "
                f"{self.schema.primary_key!r}"
            )
        if key in self._rows:
            raise ConflictError(f"duplicate primary key {key!r} in table {self.name!r}")
        self._check_unique(normalised, exclude_key=None)
        self._rows[key] = normalised
        self._index_insert(normalised, key)
        return copy.deepcopy(normalised)

    def get(self, key: Any) -> dict[str, Any]:
        """Return the row with primary key ``key`` or raise ``NotFoundError``."""
        row = self._rows.get(key)
        if row is None:
            raise NotFoundError(f"no row with key {key!r} in table {self.name!r}")
        return copy.deepcopy(row)

    def get_or_none(self, key: Any) -> dict[str, Any] | None:
        """Return the row with primary key ``key`` or ``None``."""
        row = self._rows.get(key)
        return copy.deepcopy(row) if row is not None else None

    def update(self, key: Any, changes: dict[str, Any]) -> dict[str, Any]:
        """Apply ``changes`` to the row with primary key ``key``."""
        if key not in self._rows:
            raise NotFoundError(f"no row with key {key!r} in table {self.name!r}")
        current = self._rows[key]
        if self.schema.primary_key in changes and changes[self.schema.primary_key] != key:
            raise StorageError("primary key columns cannot be updated")
        merged = dict(current)
        merged.update(changes)
        normalised = self.schema.normalise_row(merged)
        self._check_unique(normalised, exclude_key=key)
        self._index_remove(current, key)
        self._rows[key] = normalised
        self._index_insert(normalised, key)
        return copy.deepcopy(normalised)

    def delete(self, key: Any) -> dict[str, Any]:
        """Remove and return the row with primary key ``key``."""
        if key not in self._rows:
            raise NotFoundError(f"no row with key {key!r} in table {self.name!r}")
        row = self._rows.pop(key)
        self._index_remove(row, key)
        return copy.deepcopy(row)

    # -- queries ----------------------------------------------------------

    def select(
        self,
        predicate: Predicate | None = None,
        order_by: str | None = None,
        descending: bool = False,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        """Return rows matching ``predicate`` (all rows when ``None``)."""
        rows = [copy.deepcopy(row) for row in self._candidate_rows(predicate)
                if predicate is None or predicate.matches(row)]
        if order_by is not None:
            rows.sort(key=lambda row: _sort_key(row.get(order_by)), reverse=descending)
        if limit is not None:
            rows = rows[:limit]
        return rows

    def select_one(self, predicate: Predicate) -> dict[str, Any] | None:
        """Return the first matching row or ``None``."""
        matches = self.select(predicate, limit=1)
        return matches[0] if matches else None

    def count(self, predicate: Predicate | None = None) -> int:
        """Return the number of rows matching ``predicate``."""
        if predicate is None:
            return len(self._rows)
        return sum(1 for row in self._candidate_rows(predicate) if predicate.matches(row))

    def update_where(
        self, predicate: Predicate, changes: dict[str, Any]
    ) -> list[dict[str, Any]]:
        """Apply ``changes`` to every matching row; return the updated rows."""
        keys = [row[self.schema.primary_key]
                for row in self._candidate_rows(predicate)
                if predicate.matches(row)]
        return [self.update(key, changes) for key in keys]

    def delete_where(self, predicate: Predicate) -> int:
        """Delete every matching row; return the number of rows removed."""
        keys = [row[self.schema.primary_key]
                for row in self._candidate_rows(predicate)
                if predicate.matches(row)]
        for key in keys:
            self.delete(key)
        return len(keys)

    def all_rows(self) -> Iterator[dict[str, Any]]:
        """Iterate over copies of every row (used by snapshots)."""
        for row in self._rows.values():
            yield copy.deepcopy(row)

    # -- internals ---------------------------------------------------------

    def _candidate_rows(self, predicate: Predicate | None) -> Iterable[dict[str, Any]]:
        """Use indexes to narrow the rows that must be checked."""
        equalities = equality_columns(predicate)
        if self.schema.primary_key in equalities:
            row = self._rows.get(equalities[self.schema.primary_key])
            return [row] if row is not None else []
        for column, value in equalities.items():
            index = self._hash_indexes.get(column)
            if index is not None:
                keys = index.lookup(value)
                return [self._rows[key] for key in keys if key in self._rows]
        return list(self._rows.values())

    def _check_unique(self, row: dict[str, Any], exclude_key: Any) -> None:
        for column, index in self._hash_indexes.items():
            if not index.unique:
                continue
            value = row.get(column)
            if value is None:
                continue
            existing = index.lookup(value) - ({exclude_key} if exclude_key is not None else set())
            if existing:
                raise ConflictError(
                    f"duplicate value {value!r} for unique column "
                    f"{column!r} in table {self.name!r}"
                )

    def _index_insert(self, row: dict[str, Any], key: Any) -> None:
        for column, index in self._hash_indexes.items():
            index.insert(row.get(column), key)
        for column, index in self._ordered_indexes.items():
            index.insert(row.get(column), key)

    def _index_remove(self, row: dict[str, Any], key: Any) -> None:
        for column, index in self._hash_indexes.items():
            index.remove(row.get(column), key)
        for column, index in self._ordered_indexes.items():
            index.remove(row.get(column), key)


def _sort_key(value: Any) -> tuple:
    """Total order over heterogeneous, possibly-NULL column values."""
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (2, value)
    return (3, str(value))
