"""Database façade for the embedded relational store."""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any

from repro.errors import StorageError
from repro.storage.query import Predicate
from repro.storage.schema import Column, ColumnType, TableSchema
from repro.storage.table import Table
from repro.storage.transaction import Transaction
from repro.storage.wal import NullLog, WriteAheadLog


class Database:
    """A collection of tables with optional durability.

    When constructed with ``directory=None`` the database lives purely in
    memory (used by unit tests and simulations).  With a directory, every
    committed mutation is appended to a write-ahead log and the whole state
    can be checkpointed to a snapshot; :meth:`open` recovers state on restart.
    """

    def __init__(self, directory: str | Path | None = None):
        self._tables: dict[str, Table] = {}
        self._schemas: dict[str, TableSchema] = {}
        self._lock = threading.RLock()
        self._log = WriteAheadLog(directory) if directory is not None else NullLog()
        self._directory = Path(directory) if directory is not None else None

    # -- schema management --------------------------------------------------

    def create_table(self, schema: TableSchema) -> Table:
        """Create a new table from ``schema``."""
        with self._lock:
            if schema.name in self._tables:
                raise StorageError(f"table {schema.name!r} already exists")
            table = Table(schema)
            self._tables[schema.name] = table
            self._schemas[schema.name] = schema
            return table

    def ensure_table(self, schema: TableSchema) -> Table:
        """Create ``schema`` if missing, otherwise return the existing table."""
        with self._lock:
            if schema.name in self._tables:
                return self._tables[schema.name]
            return self.create_table(schema)

    def drop_table(self, name: str) -> None:
        """Remove a table and all of its rows."""
        with self._lock:
            if name not in self._tables:
                raise StorageError(f"table {name!r} does not exist")
            del self._tables[name]
            del self._schemas[name]

    def table(self, name: str) -> Table:
        """Return the table called ``name``."""
        try:
            return self._tables[name]
        except KeyError:
            raise StorageError(f"table {name!r} does not exist") from None

    def table_names(self) -> list[str]:
        return sorted(self._tables)

    # -- convenience single-statement operations -----------------------------

    def insert(self, table: str, row: dict[str, Any]) -> dict[str, Any]:
        """Insert one row and log it."""
        with self._lock:
            stored = self.table(table).insert(row)
            self._log_commit([{"op": "insert", "table": table, "row": stored}])
            return stored

    def update(self, table: str, key: Any, changes: dict[str, Any]) -> dict[str, Any]:
        """Update one row and log it."""
        with self._lock:
            updated = self.table(table).update(key, changes)
            self._log_commit(
                [{"op": "update", "table": table, "key": key, "changes": changes}]
            )
            return updated

    def delete(self, table: str, key: Any) -> dict[str, Any]:
        """Delete one row and log it."""
        with self._lock:
            removed = self.table(table).delete(key)
            self._log_commit([{"op": "delete", "table": table, "key": key}])
            return removed

    def get(self, table: str, key: Any) -> dict[str, Any]:
        return self.table(table).get(key)

    def get_or_none(self, table: str, key: Any) -> dict[str, Any] | None:
        return self.table(table).get_or_none(key)

    def select(self, table: str, predicate: Predicate | None = None, **kwargs) -> list[dict[str, Any]]:
        return self.table(table).select(predicate, **kwargs)

    def count(self, table: str, predicate: Predicate | None = None) -> int:
        return self.table(table).count(predicate)

    def transaction(self) -> Transaction:
        """Start a new transaction."""
        return Transaction(self)

    # -- durability -----------------------------------------------------------

    def checkpoint(self) -> None:
        """Write a snapshot of every table and truncate the WAL."""
        with self._lock:
            state = {
                "tables": {
                    name: list(table.all_rows()) for name, table in self._tables.items()
                }
            }
            self._log.write_snapshot(state)

    def recover(self) -> int:
        """Reload state from the snapshot and WAL.

        Tables must already have been (re-)created with their schemas before
        calling this.  Returns the number of log records replayed.
        """
        with self._lock:
            snapshot = self._log.read_snapshot()
            if snapshot is not None:
                for name, rows in snapshot.get("tables", {}).items():
                    if name not in self._tables:
                        continue
                    for row in rows:
                        self._tables[name].insert(row)
            replayed = 0
            for record in self._log.replay():
                self._apply_logged(record)
                replayed += 1
            return replayed

    def close(self) -> None:
        self._log.close()

    # -- internals --------------------------------------------------------------

    def _log_commit(self, operations: list[dict[str, Any]]) -> None:
        self._log.append({"commit": operations})

    def _apply_logged(self, record: dict[str, Any]) -> None:
        for operation in record.get("commit", []):
            table = self._tables.get(operation["table"])
            if table is None:
                continue
            op = operation["op"]
            if op == "insert":
                key = operation["row"][table.schema.primary_key]
                if table.get_or_none(key) is None:
                    table.insert(operation["row"])
            elif op == "update":
                if table.get_or_none(operation["key"]) is not None:
                    table.update(operation["key"], operation["changes"])
            elif op == "delete":
                if table.get_or_none(operation["key"]) is not None:
                    table.delete(operation["key"])


def simple_schema(
    name: str,
    primary_key: str = "id",
    string_columns: list[str] | None = None,
    json_columns: list[str] | None = None,
    indexes: list[str] | None = None,
    unique: list[str] | None = None,
) -> TableSchema:
    """Build a common schema shape: string id, string + JSON payload columns."""
    columns = [Column(primary_key, ColumnType.STRING, nullable=False)]
    for column in string_columns or []:
        columns.append(Column(column, ColumnType.STRING))
    for column in json_columns or []:
        columns.append(Column(column, ColumnType.JSON))
    return TableSchema(
        name=name,
        columns=columns,
        primary_key=primary_key,
        indexes=indexes or [],
        unique=unique or [],
    )
