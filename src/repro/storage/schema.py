"""Table schema definitions for the embedded relational store."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.errors import StorageError, ValidationError


class ColumnType(Enum):
    """Supported column types.

    ``JSON`` columns accept any JSON-serialisable value and are used for the
    parameter dictionaries and result documents Chronos stores verbatim.
    """

    STRING = "string"
    INTEGER = "integer"
    FLOAT = "float"
    BOOLEAN = "boolean"
    JSON = "json"

    def validate(self, value: Any) -> Any:
        """Validate (and lightly coerce) ``value`` for this column type."""
        if value is None:
            return None
        if self is ColumnType.STRING:
            if not isinstance(value, str):
                raise ValidationError(f"expected string, got {type(value).__name__}")
            return value
        if self is ColumnType.INTEGER:
            if isinstance(value, bool) or not isinstance(value, int):
                raise ValidationError(f"expected integer, got {value!r}")
            return value
        if self is ColumnType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValidationError(f"expected float, got {value!r}")
            return float(value)
        if self is ColumnType.BOOLEAN:
            if not isinstance(value, bool):
                raise ValidationError(f"expected boolean, got {value!r}")
            return value
        # JSON accepts anything composed of plain containers and scalars.
        _validate_json(value)
        return value


def _validate_json(value: Any) -> None:
    if value is None or isinstance(value, (str, int, float, bool)):
        return
    if isinstance(value, list):
        for item in value:
            _validate_json(item)
        return
    if isinstance(value, dict):
        for key, item in value.items():
            if not isinstance(key, str):
                raise ValidationError(f"JSON object keys must be strings, got {key!r}")
            _validate_json(item)
        return
    raise ValidationError(f"value {value!r} is not JSON-serialisable")


@dataclass(frozen=True)
class Column:
    """A single typed column.

    Attributes:
        name: column name.
        type: the :class:`ColumnType`.
        nullable: whether NULL values are accepted.
        default: value used when the column is omitted on insert.
    """

    name: str
    type: ColumnType
    nullable: bool = True
    default: Any = None


@dataclass
class TableSchema:
    """Schema of one table: columns, primary key and secondary indexes."""

    name: str
    columns: list[Column]
    primary_key: str
    unique: list[str] = field(default_factory=list)
    indexes: list[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        names = [column.name for column in self.columns]
        if len(set(names)) != len(names):
            raise StorageError(f"table {self.name!r} has duplicate column names")
        known = set(names)
        if self.primary_key not in known:
            raise StorageError(
                f"primary key {self.primary_key!r} is not a column of {self.name!r}"
            )
        for col in list(self.unique) + list(self.indexes):
            if col not in known:
                raise StorageError(
                    f"indexed column {col!r} is not a column of {self.name!r}"
                )

    @property
    def column_names(self) -> list[str]:
        return [column.name for column in self.columns]

    def column(self, name: str) -> Column:
        for column in self.columns:
            if column.name == name:
                return column
        raise StorageError(f"table {self.name!r} has no column {name!r}")

    def normalise_row(self, row: dict[str, Any]) -> dict[str, Any]:
        """Validate a row against the schema and fill in defaults.

        Unknown columns are rejected; missing non-nullable columns without a
        default raise :class:`~repro.errors.StorageError`.
        """
        known = set(self.column_names)
        unknown = set(row) - known
        if unknown:
            raise StorageError(
                f"unknown column(s) {sorted(unknown)!r} for table {self.name!r}"
            )
        normalised: dict[str, Any] = {}
        for column in self.columns:
            if column.name in row:
                value = row[column.name]
            else:
                value = column.default
            if value is None:
                if not column.nullable and column.name != self.primary_key:
                    raise StorageError(
                        f"column {column.name!r} of {self.name!r} may not be NULL"
                    )
                normalised[column.name] = None
                continue
            try:
                normalised[column.name] = column.type.validate(value)
            except ValidationError as exc:
                raise StorageError(
                    f"invalid value for {self.name}.{column.name}: {exc}"
                ) from exc
        return normalised
