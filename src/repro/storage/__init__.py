"""Embedded relational store backing Chronos Control's metadata.

The original Chronos Control persists its data model (projects, experiments,
evaluations, jobs, results, systems, deployments, users) in MySQL/MariaDB.
This package provides an embedded, pure-Python replacement with the subset of
relational functionality Chronos needs:

* typed table schemas with primary keys, unique and secondary indexes
  (:mod:`repro.storage.schema`, :mod:`repro.storage.index`),
* predicate-based selection, update and deletion (:mod:`repro.storage.query`),
* transactions with rollback (:mod:`repro.storage.transaction`),
* durability via a JSON-lines write-ahead log plus snapshots
  (:mod:`repro.storage.wal`), and
* a :class:`~repro.storage.database.Database` façade tying it all together.
"""

from repro.storage.database import Database
from repro.storage.query import Predicate, and_, eq, gt, gte, in_, lt, lte, ne, or_
from repro.storage.schema import Column, ColumnType, TableSchema

__all__ = [
    "Database",
    "TableSchema",
    "Column",
    "ColumnType",
    "Predicate",
    "eq",
    "ne",
    "gt",
    "gte",
    "lt",
    "lte",
    "in_",
    "and_",
    "or_",
]
