"""Identifier and token generation.

Chronos Control assigns every entity a short, unique, prefixed identifier
(e.g. ``job-000017``) and issues opaque session tokens.  Identifiers are
sequential per prefix within a single :class:`IdGenerator` so that test runs
are deterministic, while :func:`new_token` produces unpredictable secrets.
"""

from __future__ import annotations

import itertools
import secrets
import threading
import uuid


class IdGenerator:
    """Generates deterministic, prefixed, sequential identifiers.

    A single generator is thread-safe; each prefix has its own counter so a
    store can hand out ``project-000001``, ``job-000001`` etc. independently.
    """

    def __init__(self, width: int = 6):
        self._width = width
        self._counters: dict[str, itertools.count] = {}
        self._lock = threading.Lock()

    def next(self, prefix: str) -> str:
        """Return the next identifier for ``prefix``."""
        with self._lock:
            counter = self._counters.setdefault(prefix, itertools.count(1))
            value = next(counter)
        return f"{prefix}-{value:0{self._width}d}"

    def ensure_past(self, prefix: str, used: int) -> None:
        """Make sure the next id for ``prefix`` is greater than ``used``.

        Called after recovering a persisted store so freshly generated ids
        never collide with ids already present on disk.
        """
        with self._lock:
            counter = self._counters.get(prefix)
            current = next(counter) - 1 if counter is not None else 0
            start = max(current, used)
            self._counters[prefix] = itertools.count(start + 1)

    def reset(self) -> None:
        """Forget all counters (used by tests)."""
        with self._lock:
            self._counters.clear()


_default_generator = IdGenerator()


def new_id(prefix: str) -> str:
    """Return a process-wide sequential identifier for ``prefix``."""
    return _default_generator.next(prefix)


def new_uuid() -> str:
    """Return a random UUID4 string (used for result archive names)."""
    return str(uuid.uuid4())


def new_token(nbytes: int = 24) -> str:
    """Return an unpredictable URL-safe token for sessions and API keys."""
    return secrets.token_urlsafe(nbytes)
