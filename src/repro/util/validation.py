"""Small validation helpers used across the public API surface."""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import ValidationError


def ensure_non_empty(value: str, name: str) -> str:
    """Return ``value`` if it is a non-empty string, else raise."""
    if not isinstance(value, str) or not value.strip():
        raise ValidationError(f"{name} must be a non-empty string, got {value!r}")
    return value


def ensure_positive(value: float, name: str) -> float:
    """Return ``value`` if it is a number strictly greater than zero."""
    if not isinstance(value, (int, float)) or isinstance(value, bool) or value <= 0:
        raise ValidationError(f"{name} must be a positive number, got {value!r}")
    return value


def ensure_non_negative(value: float, name: str) -> float:
    """Return ``value`` if it is a number greater than or equal to zero."""
    if not isinstance(value, (int, float)) or isinstance(value, bool) or value < 0:
        raise ValidationError(f"{name} must be a non-negative number, got {value!r}")
    return value


def ensure_type(value: Any, expected: type | tuple[type, ...], name: str) -> Any:
    """Return ``value`` if it is an instance of ``expected``."""
    if not isinstance(value, expected):
        raise ValidationError(
            f"{name} must be of type {expected!r}, got {type(value).__name__}"
        )
    return value


def ensure_in(value: Any, allowed: Iterable[Any], name: str) -> Any:
    """Return ``value`` if it is one of ``allowed``."""
    allowed = list(allowed)
    if value not in allowed:
        raise ValidationError(f"{name} must be one of {allowed!r}, got {value!r}")
    return value


def ensure_identifier(value: str, name: str) -> str:
    """Return ``value`` if it is a safe identifier (letters, digits, ``_-.``)."""
    ensure_non_empty(value, name)
    ok = all(ch.isalnum() or ch in "_-." for ch in value)
    if not ok:
        raise ValidationError(
            f"{name} may only contain letters, digits, '_', '-' and '.', got {value!r}"
        )
    return value
