"""Shared utilities: identifiers, clocks, validation and JSON helpers."""

from repro.util.clock import Clock, SimulatedClock, SystemClock
from repro.util.ids import new_id, new_token
from repro.util.stats import mean, percentile
from repro.util.validation import (
    ensure_in,
    ensure_non_empty,
    ensure_positive,
    ensure_type,
)

__all__ = [
    "Clock",
    "SimulatedClock",
    "SystemClock",
    "new_id",
    "new_token",
    "mean",
    "percentile",
    "ensure_in",
    "ensure_non_empty",
    "ensure_positive",
    "ensure_type",
]
