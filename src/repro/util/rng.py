"""Deterministic random number helpers.

All stochastic components (workload generators, simulated failures, cost
jitter) derive their randomness from an explicit :class:`random.Random`
instance seeded by the caller, never from the global RNG, so that every
experiment is reproducible from its parameters alone -- one of the archiving
guarantees Chronos makes (requirement iv in the paper).
"""

from __future__ import annotations

import random


def make_rng(seed: int | str | None) -> random.Random:
    """Return a :class:`random.Random` seeded deterministically.

    String seeds are hashed stably (``random.Random`` accepts them directly
    and hashes them in a platform-independent way for str).
    """
    return random.Random(seed)


def derive_rng(parent: random.Random, label: str) -> random.Random:
    """Derive an independent child RNG from ``parent`` and a label.

    Used to give each job / thread its own stream so that running jobs in a
    different order does not change their individual results.
    """
    seed = parent.random()
    return random.Random(f"{seed}:{label}")
