"""JSON helpers with stable formatting and safe round-tripping."""

from __future__ import annotations

import dataclasses
import json
from enum import Enum
from typing import Any


class ChronosJsonEncoder(json.JSONEncoder):
    """Encoder that understands dataclasses, enums and sets."""

    def default(self, o: Any) -> Any:  # noqa: D102 - documented by base class
        if dataclasses.is_dataclass(o) and not isinstance(o, type):
            return dataclasses.asdict(o)
        if isinstance(o, Enum):
            return o.value
        if isinstance(o, (set, frozenset)):
            return sorted(o)
        return super().default(o)


def dumps(value: Any, indent: int | None = None) -> str:
    """Serialise ``value`` to JSON with deterministic key ordering."""
    return json.dumps(value, cls=ChronosJsonEncoder, sort_keys=True, indent=indent)


def loads(text: str) -> Any:
    """Parse a JSON document."""
    return json.loads(text)


def deep_copy_json(value: Any) -> Any:
    """Return a deep copy of a JSON-compatible value via round-tripping."""
    return loads(dumps(value))
