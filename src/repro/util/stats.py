"""Shared numeric helpers: mean and linear-interpolated percentiles.

Both the workload runner (:mod:`repro.workloads.runner`) and the analysis
layer (:mod:`repro.analysis.metrics`) summarise latency series; this module
is their single implementation so the two layers cannot drift apart.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import ValidationError


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean of ``values``; an empty series has mean 0.0."""
    data = list(values)
    if not data:
        return 0.0
    return sum(data) / len(data)


def percentile(sorted_values: Sequence[float], rank: float) -> float:
    """Linear-interpolated percentile of an already-sorted series.

    Uses the same interpolation as ``numpy.percentile``'s default: the
    ``rank``-th percentile sits at position ``rank/100 * (n - 1)`` and is
    interpolated between the two neighbouring samples.

    Raises :class:`~repro.errors.ValidationError` for an empty series or a
    rank outside ``[0, 100]``.
    """
    if not sorted_values:
        raise ValidationError("cannot compute a percentile of an empty series")
    if not 0 <= rank <= 100:
        raise ValidationError("percentile rank must lie in [0, 100]")
    position = (rank / 100.0) * (len(sorted_values) - 1)
    lower = int(position)
    upper = min(lower + 1, len(sorted_values) - 1)
    fraction = position - lower
    return sorted_values[lower] * (1 - fraction) + sorted_values[upper] * fraction
