"""Clock abstraction used throughout the toolkit.

Chronos itself timestamps events, measures job durations and enforces
heartbeat timeouts.  The original system uses wall-clock time; a reproduction
that benchmarks simulated database engines needs a *controllable* clock so
that runs are fast and deterministic.  Two implementations are provided:

* :class:`SystemClock` -- thin wrapper over :func:`time.monotonic` /
  :func:`time.time`.
* :class:`SimulatedClock` -- a manually advanced virtual clock whose ``sleep``
  simply moves time forward.  All simulated costs (storage engine latencies,
  agent work) advance this clock instead of blocking the process.
"""

from __future__ import annotations

import threading
import time
from abc import ABC, abstractmethod


class Clock(ABC):
    """Interface for obtaining timestamps and waiting."""

    @abstractmethod
    def now(self) -> float:
        """Return the current time in seconds (monotonic within one run)."""

    @abstractmethod
    def sleep(self, seconds: float) -> None:
        """Advance time by ``seconds``."""

    def elapsed_since(self, start: float) -> float:
        """Convenience: seconds elapsed since ``start``."""
        return self.now() - start


class SystemClock(Clock):
    """Wall-clock implementation backed by :mod:`time`."""

    def now(self) -> float:
        return time.monotonic()

    def sleep(self, seconds: float) -> None:
        if seconds > 0:
            time.sleep(seconds)


class SimulatedClock(Clock):
    """A virtual clock advanced explicitly or via :meth:`sleep`.

    The clock is thread-safe: concurrent agents executing simulated work can
    all advance it.  ``sleep`` never blocks the calling thread.
    """

    def __init__(self, start: float = 0.0):
        self._now = float(start)
        self._lock = threading.Lock()

    def now(self) -> float:
        with self._lock:
            return self._now

    def sleep(self, seconds: float) -> None:
        self.advance(seconds)

    def advance(self, seconds: float) -> float:
        """Move the clock forward by ``seconds`` and return the new time."""
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        with self._lock:
            self._now += seconds
            return self._now


class Stopwatch:
    """Measures elapsed time against any :class:`Clock`."""

    def __init__(self, clock: Clock):
        self._clock = clock
        self._start: float | None = None
        self._elapsed = 0.0

    def start(self) -> "Stopwatch":
        self._start = self._clock.now()
        return self

    def stop(self) -> float:
        """Stop the watch and return total elapsed seconds."""
        if self._start is not None:
            self._elapsed += self._clock.now() - self._start
            self._start = None
        return self._elapsed

    @property
    def elapsed(self) -> float:
        """Elapsed seconds so far without stopping the watch."""
        if self._start is None:
            return self._elapsed
        return self._elapsed + (self._clock.now() - self._start)

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
