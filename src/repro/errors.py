"""Exception hierarchy shared by all Chronos reproduction subsystems.

Every subpackage raises exceptions derived from :class:`ChronosError` so that
callers can catch toolkit errors without catching unrelated built-in ones.
"""

from __future__ import annotations


class ChronosError(Exception):
    """Base class for all errors raised by the toolkit."""


class ValidationError(ChronosError):
    """A value supplied by the caller failed validation."""


class NotFoundError(ChronosError):
    """A referenced entity does not exist."""


class ConflictError(ChronosError):
    """An operation conflicts with the current state (e.g. duplicate key)."""


class PermissionDeniedError(ChronosError):
    """The authenticated user is not allowed to perform the operation."""


class AuthenticationError(ChronosError):
    """Authentication failed (unknown user, wrong password, invalid token)."""


class StateError(ChronosError):
    """An operation is not valid in the entity's current state."""


class StorageError(ChronosError):
    """The embedded relational store rejected an operation."""


class TransactionError(StorageError):
    """A transaction could not be committed or used after completion."""


class DocumentStoreError(ChronosError):
    """The document store (SuE) rejected an operation."""


class DuplicateKeyError(DocumentStoreError):
    """A unique index constraint was violated in the document store."""


class ReplicationError(DocumentStoreError):
    """A replica-set operation could not be performed."""


class NotPrimaryError(ReplicationError):
    """The member addressed as primary is not (or no longer) the primary.

    Callers holding a routing layer (e.g. the sharded query router) react by
    triggering an election and retrying the operation once.
    """


class NoPrimaryError(ReplicationError):
    """No primary exists and none can be elected (majority unavailable)."""


class WriteConcernError(ReplicationError):
    """A write could not be acknowledged by enough replica-set members."""


class AgentError(ChronosError):
    """A Chronos agent failed while executing a job."""


class SchedulerError(ChronosError):
    """The job scheduler could not schedule or dispatch work."""


class ApiError(ChronosError):
    """An error that maps onto an HTTP error response.

    Attributes:
        status: HTTP status code the REST layer should return.
    """

    status = 500

    def __init__(self, message: str, status: int | None = None):
        super().__init__(message)
        if status is not None:
            self.status = status
