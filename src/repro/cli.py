"""Command-line interface of the Chronos reproduction.

The original Chronos is operated through its web UI; this reproduction offers
the same workflows from the command line::

    python -m repro demo                 # run the paper's demo end-to-end
    python -m repro demo --threads 1 2 4 --query-mix 95:5
    python -m repro workloads            # YCSB A-F on both engines
    python -m repro sharded --shards 1 2 4   # scale-out: YCSB on sharded clusters
    python -m repro replicated --kill-primary    # replica sets: durability demo
    python -m repro topologies           # one workload across every topology
    python -m repro explain --query '{"counter": {"$gte": 500}}'   # query plans
    python -m repro profile --shards 4 --replicas 3   # slow-op log + metrics
    python -m repro serve --port 8080    # serve the REST API over HTTP
    python -m repro info                 # package / experiment overview

Every command prints the tables/diagrams that the web UI of Fig. 3d would
show, using the same analysis pipeline the tests exercise.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.aggregate import ResultTable
from repro.analysis.compare import compare_groups, speedup_table
from repro.analysis.diagrams import build_diagram
from repro.version import __version__


def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Chronos (EDBT 2020) reproduction: Evaluation-as-a-Service toolkit",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser("demo", help="run the wiredTiger vs mmapv1 demo")
    demo.add_argument("--threads", type=int, nargs="+", default=[1, 2, 4, 8, 16],
                      help="client thread counts to sweep")
    demo.add_argument("--records", type=int, default=200, help="records loaded per job")
    demo.add_argument("--operations", type=int, default=400, help="operations per job")
    demo.add_argument("--query-mix", default="50:50", help="read:update ratio")
    demo.add_argument("--distribution", default="zipfian",
                      choices=["uniform", "zipfian", "latest", "hotspot"])
    demo.add_argument("--deployments", type=int, default=1,
                      help="number of identical deployments to parallelise over")
    demo.add_argument("--no-diagrams", action="store_true",
                      help="skip the ASCII diagrams")
    demo.add_argument("--report-dir", default=None,
                      help="write a full evaluation report (markdown + SVG) here")

    workloads = subparsers.add_parser("workloads", help="run YCSB A-F on both engines")
    workloads.add_argument("--threads", type=int, default=8)
    workloads.add_argument("--records", type=int, default=150)
    workloads.add_argument("--operations", type=int, default=300)

    sharded = subparsers.add_parser(
        "sharded", help="run a YCSB workload against sharded clusters")
    sharded.add_argument("--shards", type=int, nargs="+", default=[1, 2, 4],
                         help="shard counts to sweep (1 = single server)")
    sharded.add_argument("--engine", default="wiredtiger",
                         choices=["wiredtiger", "mmapv1"])
    sharded.add_argument("--workload", default="B",
                         help="YCSB core workload (A-F)")
    sharded.add_argument("--strategy", default="hash", choices=["hash", "range"],
                         help="chunk placement strategy")
    sharded.add_argument("--records", type=int, default=200)
    sharded.add_argument("--operations", type=int, default=400)
    sharded.add_argument("--threads", type=int, default=8)

    replicated = subparsers.add_parser(
        "replicated",
        help="run a YCSB workload against replica sets, sweeping write "
             "concern and read preference")
    replicated.add_argument("--replicas", type=int, default=3,
                            help="replica-set members (1 primary + N-1 secondaries)")
    replicated.add_argument("--engine", default="wiredtiger",
                            choices=["wiredtiger", "mmapv1"])
    replicated.add_argument("--workload", default="A",
                            help="YCSB core workload (A-F)")
    replicated.add_argument("--write-concerns", nargs="+", default=["1", "majority"],
                            dest="write_concerns",
                            help="write concerns to sweep (ints or 'majority')")
    replicated.add_argument("--read-preferences", nargs="+",
                            default=["primary", "secondary"],
                            dest="read_preferences",
                            choices=["primary", "secondary", "nearest"],
                            help="read preferences to sweep")
    replicated.add_argument("--lag", type=int, default=3,
                            help="oplog entries secondaries may trail behind")
    replicated.add_argument("--kill-primary", action="store_true",
                            dest="kill_primary",
                            help="kill the primary halfway through the "
                                 "measured phase (failover demo)")
    replicated.add_argument("--records", type=int, default=200)
    replicated.add_argument("--operations", type=int, default=400)
    replicated.add_argument("--threads", type=int, default=8)

    topologies = subparsers.add_parser(
        "topologies",
        help="evaluate one workload across deployment topologies through "
             "the control plane")
    topologies.add_argument("--engine", default="mmapv1",
                            choices=["wiredtiger", "mmapv1"])
    topologies.add_argument("--records", type=int, default=200)
    topologies.add_argument("--operations", type=int, default=400)
    topologies.add_argument("--threads", type=int, default=8)
    topologies.add_argument("--query-mix", default="50:50",
                            help="read:update ratio")

    explain = subparsers.add_parser(
        "explain", help="show the access path a document-store query uses")
    explain.add_argument("--query", default='{"counter": {"$gte": 500}}',
                         help="the filter to plan, as JSON")
    explain.add_argument("--records", type=int, default=1000,
                         help="synthetic documents to load before planning")
    explain.add_argument("--engine", default="wiredtiger",
                         choices=["wiredtiger", "mmapv1"])
    explain.add_argument("--index", action="append", default=None,
                         help="secondary index field (repeatable; "
                              "default: category and counter)")
    explain.add_argument("--limit", type=int, default=None,
                         help="cursor limit pushed into the planner")
    explain.add_argument("--shards", type=int, default=1,
                         help="explain against a sharded cluster (>1)")
    explain.add_argument("--strategy", default="range", choices=["hash", "range"],
                         help="chunk placement strategy of the cluster")
    explain.add_argument("--shard-key", default="_id", dest="shard_key")

    profile = subparsers.add_parser(
        "profile",
        help="run a short mixed workload with the operation profiler on and "
             "print the slow-op log plus a metrics summary")
    profile.add_argument("--engine", default="wiredtiger",
                         choices=["wiredtiger", "mmapv1"])
    profile.add_argument("--records", type=int, default=500,
                         help="documents loaded before the measured phase")
    profile.add_argument("--operations", type=int, default=200,
                         help="operations in the measured phase")
    profile.add_argument("--shards", type=int, default=1,
                         help="shard count (1 = single server)")
    profile.add_argument("--replicas", type=int, default=1,
                         help="replica-set members per deployment")
    profile.add_argument("--level", type=int, default=2, choices=[0, 1, 2],
                         help="profiling level (0 off, 1 slow only, 2 all ops)")
    profile.add_argument("--slow-ms", type=float, default=0.0, dest="slow_ms",
                         help="slow-op threshold in simulated milliseconds")
    profile.add_argument("--limit", type=int, default=15,
                         help="slow-op rows to print (slowest first)")
    profile.add_argument("--json", action="store_true", dest="as_json",
                         help="dump slow ops, metrics and sampler series as JSON")

    serve = subparsers.add_parser("serve", help="serve the Chronos REST API over HTTP")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--data-directory", default=None,
                       help="directory for the durable metadata store")

    subparsers.add_parser("info", help="show package and experiment overview")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    arguments = build_parser().parse_args(argv)
    if arguments.command == "demo":
        return _command_demo(arguments)
    if arguments.command == "workloads":
        return _command_workloads(arguments)
    if arguments.command == "sharded":
        return _command_sharded(arguments)
    if arguments.command == "replicated":
        return _command_replicated(arguments)
    if arguments.command == "topologies":
        return _command_topologies(arguments)
    if arguments.command == "explain":
        return _command_explain(arguments)
    if arguments.command == "profile":
        return _command_profile(arguments)
    if arguments.command == "serve":
        return _command_serve(arguments)
    return _command_info()


# -- commands -----------------------------------------------------------------------


def _command_demo(arguments) -> int:
    from repro.demo import prepare_demo, run_demo

    parameters = {
        "storage_engine": ["wiredtiger", "mmapv1"],
        "threads": list(arguments.threads),
        "record_count": arguments.records,
        "operation_count": arguments.operations,
        "query_mix": arguments.query_mix,
        "distribution": arguments.distribution,
    }
    setup = prepare_demo(parameters=parameters,
                         deployments_per_engine_sweep=arguments.deployments)
    jobs = setup.control.evaluations.jobs(setup.evaluation.id)
    print(f"evaluation {setup.evaluation.id}: {len(jobs)} jobs "
          f"on {len(setup.deployment_ids)} deployment(s)")
    setup = run_demo(setup)
    print(f"finished: {setup.report.jobs_finished}, failed: {setup.report.jobs_failed}")
    print()

    table = ResultTable.from_results(setup.results, [
        "parameters.storage_engine", "parameters.threads",
        "throughput_ops_per_sec", "latency_p95_ms", "storage_bytes",
    ]).sort_by("parameters.threads")
    print(table.to_markdown())
    print()

    comparison = compare_groups(setup.results, "parameters.storage_engine",
                                "throughput_ops_per_sec")
    print(f"winner: {comparison['winner']} "
          f"({comparison['factor']:.2f}x over {comparison['runner_up']})")
    for row in speedup_table(setup.results, "parameters.threads",
                             "throughput_ops_per_sec", "parameters.storage_engine",
                             baseline_group="mmapv1"):
        print(f"  threads={row['parameters.threads']:>3}  "
              f"wiredtiger/mmapv1 = {row.get('wiredtiger_speedup', 0.0):.2f}x")

    if not arguments.no_diagrams:
        print()
        diagram = build_diagram("line", "Throughput vs threads",
                                x_label="threads", y_label="ops/s")
        from repro.analysis.aggregate import pivot

        for name, points in pivot(setup.results, "parameters.threads",
                                  "throughput_ops_per_sec",
                                  "parameters.storage_engine").items():
            diagram.add_series(str(name), points)
        print(diagram.render_ascii())

    if arguments.report_dir:
        from repro.analysis.report import evaluation_report

        report = evaluation_report(setup.control, setup.evaluation.id)
        path = report.write(arguments.report_dir)
        print(f"\nreport written to {path}")
    return 0


def _command_workloads(arguments) -> int:
    from repro.docstore.server import DocumentServer
    from repro.workloads.runner import DocumentBenchmark, WorkloadSpec
    from repro.workloads.ycsb import CORE_WORKLOADS

    print(f"| workload | wiredTiger (ops/s) | mmapv1 (ops/s) | ratio |")
    print("| --- | --- | --- | --- |")
    for name, workload in CORE_WORKLOADS.items():
        throughputs = {}
        for engine in ("wiredtiger", "mmapv1"):
            spec = WorkloadSpec(record_count=arguments.records,
                                operation_count=arguments.operations,
                                threads=arguments.threads,
                                mix=workload.mix, distribution=workload.distribution)
            result = DocumentBenchmark(DocumentServer(engine), spec).execute_full()
            throughputs[engine] = result.throughput_ops_per_sec
        ratio = throughputs["wiredtiger"] / throughputs["mmapv1"]
        print(f"| {name} | {throughputs['wiredtiger']:,.0f} "
              f"| {throughputs['mmapv1']:,.0f} | {ratio:.2f}x |")
    return 0


def _command_sharded(arguments) -> int:
    from repro.workloads.runner import DocumentBenchmark, WorkloadSpec
    from repro.workloads.ycsb import ycsb_workload

    workload = ycsb_workload(arguments.workload)
    print(f"YCSB workload {workload.name} ({workload.description}) on "
          f"{arguments.engine}, {arguments.threads} threads, "
          f"{arguments.strategy} placement")
    print("| shards | throughput (ops/s) | p95 (ms) | chunks | migrations |")
    print("| --- | --- | --- | --- | --- |")
    for shards in arguments.shards:
        spec = WorkloadSpec(record_count=arguments.records,
                            operation_count=arguments.operations,
                            threads=arguments.threads,
                            mix=workload.mix, distribution=workload.distribution,
                            shards=shards, shard_strategy=arguments.strategy)
        result = DocumentBenchmark.for_spec(spec, arguments.engine).execute_full()
        statistics = result.engine_statistics
        print(f"| {shards} | {result.throughput_ops_per_sec:,.0f} "
              f"| {result.latency_p95_ms:.3f} | {statistics.get('chunks', 1)} "
              f"| {statistics.get('migrations', 0)} |")
    return 0


def _command_topologies(arguments) -> int:
    from repro.demo import (
        TOPOLOGY_COMPARISON,
        run_topology_comparison,
        topology_comparison_rows,
    )

    parameters = {
        "storage_engine": arguments.engine,
        "threads": arguments.threads,
        "record_count": arguments.records,
        "operation_count": arguments.operations,
        "query_mix": arguments.query_mix,
        "distribution": "zipfian",
        "seed": 42,
    }
    print(f"evaluating one workload ({arguments.engine}, "
          f"{arguments.threads} threads, {arguments.query_mix} mix) across "
          f"{len(TOPOLOGY_COMPARISON)} deployment topologies "
          f"through the control plane")
    setup = run_topology_comparison(parameters=parameters)
    rows = topology_comparison_rows(setup)
    print()
    print("| deployment | topology | throughput (ops/s) | avg latency (ms) "
          "| documents |")
    print("| --- | --- | --- | --- | --- |")
    for name, row in rows.items():
        print(f"| {name} | {row['reported_kind'] or 'failed'} "
              f"| {row['throughput']:,.0f} "
              f"| {row['latency_avg_ms']:.4f} "
              f"| {row['documents']:g} |")
    failed = sum(row["jobs_failed"] for row in rows.values())
    print()
    print(f"evaluations: {len(setup.evaluations)}, failed jobs: {failed}")
    return 1 if failed else 0


def _command_replicated(arguments) -> int:
    from repro.docstore.replication import FailureInjector, ReplicaSet
    from repro.docstore.topology import parse_write_concern
    from repro.workloads.runner import DocumentBenchmark, WorkloadSpec
    from repro.workloads.ycsb import ycsb_workload

    workload = ycsb_workload(arguments.workload)
    print(f"YCSB workload {workload.name} ({workload.description}) on "
          f"{arguments.engine}, {arguments.replicas} member(s), "
          f"{arguments.threads} threads, lag={arguments.lag}"
          + (", killing the primary mid-run" if arguments.kill_primary else ""))
    print("| w | reads | throughput (ops/s) | p95 (ms) | staleness (avg) "
          "| failovers | lost writes |")
    print("| --- | --- | --- | --- | --- | --- | --- |")
    for write_concern in arguments.write_concerns:
        for read_preference in arguments.read_preferences:
            spec = WorkloadSpec(record_count=arguments.records,
                                operation_count=arguments.operations,
                                threads=arguments.threads,
                                mix=workload.mix,
                                distribution=workload.distribution,
                                replicas=arguments.replicas,
                                write_concern=parse_write_concern(write_concern),
                                read_preference=read_preference,
                                replication_lag=arguments.lag)
            benchmark = DocumentBenchmark.for_spec(spec, arguments.engine)
            if arguments.kill_primary and isinstance(benchmark.server, ReplicaSet):
                injector = FailureInjector(benchmark.server)
                kill_at = spec.operation_count // 2

                def hook(index: int, injector=injector, kill_at=kill_at) -> None:
                    if index == kill_at:
                        injector.kill_primary()

                benchmark.operation_hook = hook
            result = benchmark.execute_full()
            replication = result.engine_statistics.get("replication", {})
            print(f"| {write_concern} | {read_preference} "
                  f"| {result.throughput_ops_per_sec:,.0f} "
                  f"| {result.latency_p95_ms:.3f} "
                  f"| {replication.get('staleness_mean', 0.0):.2f} "
                  f"| {replication.get('failovers', 0)} "
                  f"| {replication.get('rolled_back_entries', 0)} |")
    return 0


def _command_explain(arguments) -> int:
    import json
    import random

    from repro.docstore.client import DocumentClient
    from repro.docstore.topology import TopologySpec, build_topology
    from repro.workloads.generator import RecordGenerator

    try:
        query = json.loads(arguments.query)
    except json.JSONDecodeError as error:
        print(f"invalid --query JSON: {error}", file=sys.stderr)
        return 2
    if not isinstance(query, dict):
        print("--query must be a JSON object", file=sys.stderr)
        return 2

    server = build_topology(TopologySpec(
        shards=arguments.shards, shard_key=arguments.shard_key,
        shard_strategy=arguments.strategy, storage_engine=arguments.engine))
    handle = DocumentClient(server).collection("benchmark", "usertable")
    generator = RecordGenerator(field_count=2, field_length=8)
    rng = random.Random(7)
    for index in range(arguments.records):
        handle.insert_one(generator.record(index, rng))
    for field_path in arguments.index or ["category", "counter"]:
        handle.create_index(field_path)
    plan = handle.explain(query, limit=arguments.limit)
    print(json.dumps(plan, indent=2, sort_keys=True, default=str))
    return 0


def _command_profile(arguments) -> int:
    import json

    from repro.workloads.runner import DocumentBenchmark, WorkloadSpec
    from repro.workloads.ycsb import OperationMix

    spec = WorkloadSpec(
        record_count=arguments.records,
        operation_count=arguments.operations,
        mix=OperationMix(read=0.55, update=0.20, insert=0.05, scan=0.10,
                         grouped_count=0.05, top_k=0.05),
        shards=arguments.shards,
        replicas=arguments.replicas,
        profile_level=arguments.level,
        slow_ms=arguments.slow_ms,
    )
    benchmark = DocumentBenchmark.for_spec(spec, arguments.engine)
    sampler = benchmark.attach_sampler(interval_seconds=0.05)
    result = benchmark.execute_full()
    slow = benchmark.slow_ops()
    metrics = benchmark.server.metrics_snapshot()

    if arguments.as_json:
        print(json.dumps({
            "result": result.as_dict(),
            "slow_ops": slow,
            "metrics": metrics,
            "sampler": sampler.as_dict(),
        }, indent=2, sort_keys=True, default=str))
        return 0

    print(f"{arguments.engine}, shards={arguments.shards}, "
          f"replicas={arguments.replicas}, level={arguments.level}, "
          f"slowms={arguments.slow_ms:g} -- "
          f"{result.operations} ops, "
          f"{result.throughput_ops_per_sec:,.0f} ops/s simulated")
    print()
    print(f"slow-op log: {len(slow)} entries "
          f"(showing the {min(arguments.limit, len(slow))} slowest)")
    print("| op | ns | path | cache | exam/ret | lock ms | sim ms | shards |")
    print("| --- | --- | --- | --- | --- | --- | --- | --- |")
    slowest = sorted(slow, key=lambda entry: entry.get("simulated_ms", 0.0),
                     reverse=True)[:arguments.limit]
    for entry in slowest:
        shards = entry.get("shards")
        if shards:
            detail = f"{len(shards)}{'*' if entry.get('parallel') else ''}"
            straggler = entry.get("straggler")
            if straggler:
                detail += f" ({straggler})"
        else:
            detail = "-"
        print(f"| {entry['op']} | {entry['ns']} "
              f"| {entry.get('access_path', '-')} "
              f"| {entry.get('plan_cache', '-')} "
              f"| {entry['docs_examined']}/{entry['docs_returned']} "
              f"| {entry['lock_wait_ms']:.3f} "
              f"| {entry['simulated_ms']:.3f} | {detail} |")
    print()
    counters = metrics.get("counters", {})
    operations = {name.split(".", 1)[1]: count
                  for name, count in sorted(counters.items())
                  if name.startswith("operations.")}
    print(f"operations: {operations}")
    histograms = metrics.get("histograms", {})
    for name in sorted(histograms):
        if not name.startswith("latency."):
            continue
        snap = histograms[name]
        print(f"  {name}: n={snap['count']} p50={snap['p50_ms']:.3f}ms "
              f"p95={snap['p95_ms']:.3f}ms p99={snap['p99_ms']:.3f}ms")
    planner = metrics.get("planner", {})
    print(f"planner: {planner}")
    print(f"sampler: {len(sampler.series())} samples "
          f"@ {sampler.interval_seconds:g}s")
    return 0


def _command_serve(arguments) -> int:
    from repro.agents.kvstore_agent import register_kvstore_system
    from repro.agents.mongodb_agent import register_mongodb_system
    from repro.agents.replicated_agent import register_replicated_mongodb_system
    from repro.agents.sharded_agent import register_sharded_mongodb_system
    from repro.core.control import ChronosControl
    from repro.rest.wire import HttpServerAdapter

    control = ChronosControl(data_directory=arguments.data_directory)
    admin = control.users.get_by_username("admin")
    if control.systems.get_by_name("mongodb") is None:
        register_mongodb_system(control, owner_id=admin.id)
    if control.systems.get_by_name("mongodb-sharded") is None:
        register_sharded_mongodb_system(control, owner_id=admin.id)
    if control.systems.get_by_name("mongodb-replicated") is None:
        register_replicated_mongodb_system(control, owner_id=admin.id)
    if control.systems.get_by_name("kvstore") is None:
        register_kvstore_system(control, owner_id=admin.id)
    adapter = HttpServerAdapter(control.api, port=arguments.port).start()
    print(f"Chronos Control REST API listening on {adapter.base_url}/api/v1")
    print("default credentials: admin / admin  (Ctrl+C to stop)")
    try:
        import time

        while True:
            time.sleep(3600)
    except KeyboardInterrupt:
        adapter.stop()
    return 0


def _command_info() -> int:
    print(f"repro {__version__} -- reproduction of 'Chronos: The Swiss Army Knife for "
          f"Database Evaluations' (EDBT 2020)")
    print()
    print("subsystems: core (Chronos Control), agent (Python agent library), docstore")
    print("  (wiredTiger/mmapv1 SuE with a cost-based query planner), docstore.sharding")
    print("  (sharded cluster + range-aware query router), docstore.replication")
    print("  (replica sets: oplog, elections, write/read concern, failure injection),")
    print("  docstore.topology (serializable deployment shapes + the build_topology")
    print("  factory), kvstore (second SuE), storage (embedded RDBMS), rest")
    print("  (versioned API), workloads (YCSB), analysis (metrics + diagrams)")
    print()
    print("experiments: E1-E12, see DESIGN.md and EXPERIMENTS.md; regenerate with")
    print("  pytest benchmarks/")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
