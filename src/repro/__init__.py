"""Chronos reproduction: an Evaluation-as-a-Service toolkit for database evaluations.

This package reimplements the system described in "Chronos: The Swiss Army
Knife for Database Evaluations" (Vogt et al., EDBT 2020) in pure Python,
including every substrate the original depends on:

* :mod:`repro.storage` -- an embedded relational store (replaces MySQL/MariaDB)
  backing Chronos Control's metadata.
* :mod:`repro.rest` -- an HTTP-style framework with versioned routing
  (replaces the Apache/PHP REST API).
* :mod:`repro.docstore` -- a MongoDB-like document database with two storage
  engines (``wiredtiger`` and ``mmapv1``), the System under Evaluation used by
  the paper's demonstration.
* :mod:`repro.core` -- Chronos Control: projects, experiments, evaluations,
  jobs, systems, deployments, scheduling, failure handling, archiving and
  result analysis.
* :mod:`repro.agent` -- the Python reference implementation of the Chronos
  Agent library (announced as future work in the paper).
* :mod:`repro.workloads` -- YCSB-style workload generators and the MongoDB
  benchmark client used by the demo.
* :mod:`repro.analysis` -- metrics, aggregation and diagram rendering.
"""

from repro.core.control import ChronosControl
from repro.version import __version__

__all__ = ["ChronosControl", "__version__"]
