"""E5 -- REST API throughput for the agent-facing endpoints (Section 2.2).

Measures the cost of the requests a Chronos Agent issues most often (claim
job, report progress, upload result) and of the v2 monitoring endpoints, and
regenerates a requests-per-second table per endpoint.
"""

from __future__ import annotations

import pytest

from repro.agents.testing import register_sleep_system
from repro.core.control import ChronosControl
from repro.rest.client import RestClient
from repro.util.clock import SimulatedClock


@pytest.fixture(scope="module")
def api_setup():
    control = ChronosControl(clock=SimulatedClock())
    admin = control.users.get_by_username("admin")
    system = register_sleep_system(control, owner_id=admin.id)
    deployment = control.deployments.register(system.id, "node-1")
    project = control.projects.create("api bench", admin)
    experiment = control.experiments.create(project.id, system.id, "exp",
                                            parameters={"work_units": list(range(2000))})
    evaluation, _ = control.evaluations.create(experiment.id)
    token = control.users.login("admin", "admin")
    client = RestClient(control.api, token=token)
    return control, system, deployment, evaluation, client


@pytest.mark.benchmark(group="E5-agent-endpoints")
def test_benchmark_claim_progress_result_cycle(benchmark, api_setup):
    """One complete agent interaction: claim -> progress -> logs -> result."""
    control, system, deployment, _, client = api_setup

    def cycle():
        job = client.post("/api/v1/agents/next-job", {
            "system_id": system.id, "deployment_id": deployment.id}).json()["job"]
        client.patch(f"/api/v1/jobs/{job['id']}/progress", {"progress": 50})
        client.post(f"/api/v1/jobs/{job['id']}/logs", {"content": "tick"})
        client.post(f"/api/v1/jobs/{job['id']}/result", {"data": {"ok": 1}})
        return job

    job = benchmark(cycle)
    assert job is not None


@pytest.mark.benchmark(group="E5-read-endpoints")
def test_benchmark_job_detail_reads(benchmark, api_setup):
    control, system, deployment, evaluation, client = api_setup
    job_id = control.evaluations.jobs(evaluation.id)[0].id

    def read():
        client.get(f"/api/v1/jobs/{job_id}")
        client.get(f"/api/v1/jobs/{job_id}/timeline")
        client.get(f"/api/v1/evaluations/{evaluation.id}/progress")

    benchmark(read)


@pytest.mark.benchmark(group="E5-read-endpoints")
def test_benchmark_v2_statistics(benchmark, api_setup):
    *_, client = api_setup
    response = benchmark(client.get, "/api/v2/statistics")
    assert response.ok


@pytest.mark.benchmark(group="E5-auth")
def test_benchmark_login(benchmark, api_setup):
    control, *_ , client = api_setup

    def login():
        return control.api.request("POST", "/api/v1/login",
                                   body={"username": "admin", "password": "admin"})

    response = benchmark(login)
    assert response.ok


@pytest.fixture(scope="module", autouse=True)
def regenerate_table(report_writer, api_setup):
    """Record per-endpoint request counts (rough requests/second figures come
    from the pytest-benchmark table itself)."""
    control, system, deployment, evaluation, client = api_setup
    lines = [
        "| endpoint | purpose |",
        "| --- | --- |",
        "| POST /api/v1/agents/next-job | agent claims the next job |",
        "| PATCH /api/v1/jobs/{id}/progress | progress + heartbeat |",
        "| POST /api/v1/jobs/{id}/logs | periodic log upload |",
        "| POST /api/v1/jobs/{id}/result | result upload (JSON) |",
        "| GET /api/v1/evaluations/{id}/progress | monitoring (Fig. 3b) |",
        "| GET /api/v2/statistics | instance statistics (v2) |",
        "",
        "Timings are produced by pytest-benchmark (see bench_output.txt).",
    ]
    report_writer("E5_rest_api", "Agent-facing REST endpoint costs", lines)
