"""Ablation benches: which engine mechanism produces which part of the gap?

DESIGN.md calls out the mechanisms that differentiate the two storage engines
(lock granularity, compression, padding, cache size).  Each ablation switches
one mechanism off (or hands it to the other engine) and re-measures the
comparison, confirming the simulated gap really is produced by the modelled
mechanisms rather than by unrelated constants.
"""

from __future__ import annotations

import pytest

from repro.docstore.cost import ConcurrencyProfile
from repro.docstore.mmapv1 import MmapV1Engine
from repro.docstore.server import DocumentServer
from repro.docstore.wiredtiger import WiredTigerEngine
from repro.workloads.runner import DocumentBenchmark, WorkloadSpec
from repro.workloads.ycsb import OperationMix

WRITE_HEAVY = OperationMix(read=0.5, update=0.5)


def run_spec(server: DocumentServer, threads: int = 8) -> float:
    spec = WorkloadSpec(record_count=150, operation_count=300, threads=threads,
                        mix=WRITE_HEAVY, seed=11)
    return DocumentBenchmark(server, spec).execute_full().throughput_ops_per_sec


@pytest.fixture(scope="module")
def ablation_table(report_writer):
    rows: list[tuple[str, float]] = []

    rows.append(("wiredtiger (baseline)", run_spec(DocumentServer("wiredtiger"))))
    rows.append(("mmapv1 (baseline)", run_spec(DocumentServer("mmapv1"))))

    # Ablation 1: wiredTiger without compression (ratio 1.0) -- more I/O per write.
    rows.append(("wiredtiger, no compression",
                 run_spec(DocumentServer("wiredtiger", compression_ratio=1.0))))

    # Ablation 2: mmapv1 with generous padding -- fewer document moves.
    rows.append(("mmapv1, padding 3.0",
                 run_spec(DocumentServer("mmapv1", padding_factor=3.0))))

    # Ablation 3: give mmapv1 document-level concurrency (the lock is the
    # mechanism; with it removed the engines should converge at 8 threads).
    class DocLockMmap(MmapV1Engine):
        concurrency = WiredTigerEngine.concurrency

    server = DocumentServer("mmapv1")
    server._new_engine = lambda: DocLockMmap()  # swap the engine factory
    rows.append(("mmapv1, document-level locking (hypothetical)", run_spec(server)))

    # Ablation 4: give wiredTiger a collection-level lock profile.
    class CollectionLockWired(WiredTigerEngine):
        concurrency = ConcurrencyProfile(serial_write_fraction=0.95,
                                         serial_read_fraction=0.05,
                                         parallel_efficiency=0.85)

    server = DocumentServer("wiredtiger")
    server._new_engine = lambda: CollectionLockWired()
    rows.append(("wiredtiger, collection-level locking (hypothetical)", run_spec(server)))

    lines = ["| configuration | throughput at 8 threads (ops/s) |", "| --- | --- |"]
    lines += [f"| {name} | {value:,.0f} |" for name, value in rows]
    report_writer("E9_ablation", "Mechanism ablations (50:50 mix, 8 threads)", lines)
    return dict(rows)


class TestAblationShape:
    def test_lock_granularity_is_the_dominant_mechanism(self, ablation_table):
        """Swapping lock granularity moves each engine most of the way to the other."""
        baseline_gap = (ablation_table["wiredtiger (baseline)"]
                        - ablation_table["mmapv1 (baseline)"])
        doc_lock_mmap = ablation_table["mmapv1, document-level locking (hypothetical)"]
        assert doc_lock_mmap > ablation_table["mmapv1 (baseline)"] * 2
        collection_wired = ablation_table["wiredtiger, collection-level locking (hypothetical)"]
        assert collection_wired < ablation_table["wiredtiger (baseline)"] * 0.5
        assert baseline_gap > 0

    def test_compression_contributes_but_less_than_locking(self, ablation_table):
        uncompressed = ablation_table["wiredtiger, no compression"]
        baseline = ablation_table["wiredtiger (baseline)"]
        assert uncompressed < baseline
        locking_effect = baseline - ablation_table[
            "wiredtiger, collection-level locking (hypothetical)"]
        compression_effect = baseline - uncompressed
        assert locking_effect > compression_effect

    def test_padding_helps_mmapv1_updates(self, ablation_table):
        assert (ablation_table["mmapv1, padding 3.0"]
                >= ablation_table["mmapv1 (baseline)"] * 0.95)


@pytest.mark.benchmark(group="E9-ablation")
@pytest.mark.parametrize("configuration", ["wiredtiger-baseline", "wiredtiger-no-compression",
                                           "mmapv1-baseline", "mmapv1-padded"])
def test_benchmark_ablation_configuration(benchmark, configuration):
    factories = {
        "wiredtiger-baseline": lambda: DocumentServer("wiredtiger"),
        "wiredtiger-no-compression": lambda: DocumentServer("wiredtiger",
                                                            compression_ratio=1.0),
        "mmapv1-baseline": lambda: DocumentServer("mmapv1"),
        "mmapv1-padded": lambda: DocumentServer("mmapv1", padding_factor=3.0),
    }
    throughput = benchmark.pedantic(lambda: run_spec(factories[configuration]()),
                                    rounds=2, iterations=1)
    benchmark.extra_info["throughput_ops_per_sec"] = throughput
    assert throughput > 0
