"""E9 -- scale-out: YCSB workloads against sharded clusters.

The sharded deployment opens an evaluation axis the single-server demo of
the paper cannot express: shard count x placement strategy.  This harness
reproduces the expected shape -- throughput grows with the shard count
(each shard serves a slice of the client threads with its own locks) while
the routed results stay identical to a single server's -- and records the
chunk/migration bookkeeping of every configuration.
"""

from __future__ import annotations

import pytest

from repro.workloads.runner import DocumentBenchmark, WorkloadSpec
from repro.workloads.ycsb import CORE_WORKLOADS

THREADS = 8
SHARD_COUNTS = [1, 2, 4, 8]
WORKLOAD = "A"  # update heavy: the mix that contends hardest on one server


def run_sharded(shards: int, workload: str = WORKLOAD, strategy: str = "hash",
                threads: int = THREADS):
    core = CORE_WORKLOADS[workload]
    spec = WorkloadSpec(record_count=200, operation_count=400, threads=threads,
                        mix=core.mix, distribution=core.distribution, seed=7,
                        shards=shards, shard_strategy=strategy)
    return DocumentBenchmark.for_spec(spec, "wiredtiger").execute_full()


@pytest.fixture(scope="module")
def shard_sweep(report_writer):
    sweep = {shards: run_sharded(shards) for shards in SHARD_COUNTS}
    lines = ["| shards | throughput (ops/s) | p95 (ms) | chunks | migrations |",
             "| --- | --- | --- | --- | --- |"]
    for shards, result in sweep.items():
        statistics = result.engine_statistics
        lines.append(f"| {shards} | {result.throughput_ops_per_sec:,.0f} "
                     f"| {result.latency_p95_ms:.3f} | {statistics.get('chunks', 1)} "
                     f"| {statistics.get('migrations', 0)} |")
    report_writer("E9_sharded_cluster",
                  f"YCSB {WORKLOAD} across shard counts at {THREADS} threads", lines)
    return sweep


class TestScaleOutShape:
    def test_throughput_grows_with_shard_count(self, shard_sweep):
        assert (shard_sweep[4].throughput_ops_per_sec
                > shard_sweep[1].throughput_ops_per_sec)

    def test_scaling_is_monotone_across_the_sweep(self, shard_sweep):
        ordered = [shard_sweep[shards].throughput_ops_per_sec
                   for shards in SHARD_COUNTS]
        assert all(later >= earlier * 0.95
                   for earlier, later in zip(ordered, ordered[1:]))

    def test_p95_latency_shrinks_with_shard_count(self, shard_sweep):
        assert shard_sweep[4].latency_p95_ms <= shard_sweep[1].latency_p95_ms

    def test_every_configuration_completes_all_operations(self, shard_sweep):
        for result in shard_sweep.values():
            assert result.operations == 400

    def test_sharded_runs_report_cluster_statistics(self, shard_sweep):
        for shards, result in shard_sweep.items():
            if shards == 1:
                continue
            statistics = result.engine_statistics
            assert statistics["sharded"] is True
            assert statistics["chunks"] >= shards
            assert sum(statistics["chunk_distribution"].values()) == statistics["chunks"]

    def test_document_totals_identical_across_shard_counts(self, shard_sweep):
        totals = {shards: result.engine_statistics["documents"]
                  for shards, result in shard_sweep.items()}
        assert len(set(totals.values())) == 1


@pytest.mark.benchmark(group="E9-sharded")
@pytest.mark.parametrize("shards", SHARD_COUNTS)
def test_benchmark_sharded_cluster(benchmark, shards):
    """Wall-clock cost of one YCSB run against one shard count."""
    result = benchmark.pedantic(run_sharded, args=(shards,), rounds=2, iterations=1)
    benchmark.extra_info.update({
        "shards": shards,
        "throughput_ops_per_sec": result.throughput_ops_per_sec,
    })
    assert result.operations == 400
