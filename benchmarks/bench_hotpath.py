"""E13 -- the document hot path: real wall-clock ops/sec after the overhaul.

Every earlier benchmark reports *simulated* seconds -- the cost model the
engines charge.  E13 measures the opposite axis: how many operations per
second of **real wall-clock time** the reproduction executes, which is what
the copy-on-write document protocol, the compiled/cached query matchers and
the cached size accounting were built to raise.  The paper's scenario matrix
funnels every experiment through this path, so its constant factors bound how
large a scenario the harness can run (ScalienDB makes the same argument for
real engines).

Phases per deployment shape (standalone / sharded / replicated, built through
``TopologySpec`` like every other scenario):

* ``load``     -- batch ``insert_many`` of the YCSB table (the E13 floor
  guards >= 2x over the pre-overhaul implementation on this phase),
* ``read``     -- YCSB-C: 100% zipfian point reads (>= 3x floor),
* ``update``   -- YCSB-A-style 50/50 read/update mix,
* ``scan``     -- YCSB-E-style limited ordered range scans,
* ``count``    -- the streaming count path on an indexed predicate.

The run emits machine-readable JSON (``benchmarks/results/E13_hotpath.json``
by default) so the perf trajectory has wall-clock data from this PR on.

Run standalone for the CI smoke check (fails below conservative ops/sec
floors -- a perf regression guard, set far under developer-laptop numbers to
absorb slow CI runners)::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --smoke
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path
from typing import Any, Callable

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.docstore.client import DocumentClient  # noqa: E402
from repro.docstore.topology import TopologySpec, build_topology  # noqa: E402
from repro.workloads.distributions import make_distribution  # noqa: E402
from repro.workloads.generator import RecordGenerator  # noqa: E402

LOAD_BATCH = 1000
SCAN_LIMIT = 10

TOPOLOGIES: dict[str, TopologySpec] = {
    "standalone": TopologySpec(),
    "sharded": TopologySpec(shards=4, shard_key="_id", shard_strategy="hash"),
    "replicated": TopologySpec(replicas=3, write_concern="majority"),
}

# Conservative wall-clock floors for the smoke check, in ops/sec on the
# *standalone* shape (sharded/replicated pay routing/replication work on the
# same hot path and are reported, not gated).  Developer-laptop numbers are
# ~15-40x higher; CI runners get a wide margin before this trips.
SMOKE_FLOORS = {"load": 2_000.0, "read": 4_000.0, "update": 1_500.0,
                "scan": 1_000.0}


def _phase(operations: int, seconds: float) -> dict[str, float]:
    return {
        "operations": operations,
        "wall_seconds": round(seconds, 6),
        "ops_per_sec": round(operations / seconds, 1) if seconds > 0 else 0.0,
    }


def _timed(operations: int, body: Callable[[], None]) -> dict[str, float]:
    start = time.perf_counter()
    body()
    return _phase(operations, time.perf_counter() - start)


def run_scenario(name: str, spec: TopologySpec, records: int,
                 operations: int, seed: int = 42) -> dict[str, Any]:
    """Load one deployment and drive every phase, timing real seconds."""
    server = build_topology(spec)
    client = DocumentClient(server)
    handle = client.collection("benchmark", "usertable")
    generator = RecordGenerator(field_count=10, field_length=100)
    rng = random.Random(seed)
    distribution = make_distribution("zipfian", records)
    phases: dict[str, Any] = {}

    # Pre-generate everything: the phases time *database* work, not the
    # workload generator's random payload construction.
    batches = [[generator.record(index, rng)
                for index in range(start, min(start + LOAD_BATCH, records))]
               for start in range(0, records, LOAD_BATCH)]

    def load() -> None:
        for batch in batches:
            handle.insert_many(batch)
        handle.create_index("category")

    phases["load"] = _timed(records, load)

    read_keys = [generator.key(distribution.next_key(rng))
                 for __ in range(operations)]

    def read() -> None:
        for key in read_keys:
            handle.find_with_cost({"_id": key})

    phases["read"] = _timed(operations, read)

    update_plan = [(generator.key(distribution.next_key(rng)),
                    generator.update_fragment(rng) if index % 2 else None)
                   for index in range(operations)]

    def update() -> None:
        for key, fragment in update_plan:
            if fragment is None:
                handle.find_with_cost({"_id": key})
            else:
                handle.update_one({"_id": key}, fragment)

    phases["update"] = _timed(operations, update)

    scan_operations = max(1, operations // 10)
    scan_keys = [generator.key(distribution.next_key(rng))
                 for __ in range(scan_operations)]

    def scan() -> None:
        for key in scan_keys:
            handle.find_with_cost({"_id": {"$gte": key}}, limit=SCAN_LIMIT)

    phases["scan"] = _timed(scan_operations, scan)

    count_operations = max(1, operations // 100)

    def count() -> None:
        for index in range(count_operations):
            handle.count_documents({"category": f"cat{index % 10}"})

    phases["count"] = _timed(count_operations, count)

    documents = handle.count_documents({})
    assert documents == records, (name, documents, records)
    return {"topology": spec.kind, "records": records,
            "operations": operations, "phases": phases}


def run(records: int, operations: int, shapes: list[str]) -> dict[str, Any]:
    scenarios: dict[str, Any] = {}
    for name in shapes:
        scenarios[name] = run_scenario(name, TOPOLOGIES[name], records, operations)
        summary = ", ".join(
            f"{phase}={data['ops_per_sec']:,.0f} ops/s"
            for phase, data in scenarios[name]["phases"].items())
        print(f"[{name:>11}] {summary}")
    return {"benchmark": "E13_hotpath", "records": records,
            "operations": operations, "scenarios": scenarios}


def check_floors(report: dict[str, Any]) -> list[str]:
    """The perf regression guard: standalone phases must clear their floors."""
    failures = []
    phases = report["scenarios"]["standalone"]["phases"]
    for phase, floor in SMOKE_FLOORS.items():
        achieved = phases[phase]["ops_per_sec"]
        if achieved < floor:
            failures.append(
                f"standalone {phase}: {achieved:,.0f} ops/s is below the "
                f"regression floor of {floor:,.0f} ops/s")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small run with ops/sec regression floors (CI)")
    parser.add_argument("--records", type=int, default=None,
                        help="documents loaded per scenario")
    parser.add_argument("--operations", type=int, default=None,
                        help="measured operations per phase")
    parser.add_argument("--json", type=Path,
                        default=Path(__file__).parent / "results" / "E13_hotpath.json",
                        help="where to write the machine-readable report")
    arguments = parser.parse_args()

    records = arguments.records or (2_000 if arguments.smoke else 20_000)
    operations = arguments.operations or (2_000 if arguments.smoke else 20_000)
    shapes = (["standalone", "sharded", "replicated"] if not arguments.smoke
              else ["standalone", "sharded"])

    report = run(records, operations, shapes)
    report["mode"] = "smoke" if arguments.smoke else "full"

    arguments.json.parent.mkdir(parents=True, exist_ok=True)
    arguments.json.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {arguments.json}")

    if arguments.smoke:
        failures = check_floors(report)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print("smoke ok: all standalone phases above their regression floors")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
