"""Shared helpers for the benchmark harness.

Every benchmark regenerates the rows/series of one experiment from DESIGN.md
(the demo of Fig. 3d plus the architectural claims of the paper).  Because a
plain ``pytest benchmarks/ --benchmark-only`` run captures stdout, each
harness also writes its reproduced table to ``benchmarks/results/<exp>.md``
so the regenerated artefacts survive the run.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIRECTORY = Path(__file__).parent / "results"


def write_experiment_report(experiment_id: str, title: str, lines: list[str]) -> Path:
    """Persist the regenerated table/series of one experiment."""
    RESULTS_DIRECTORY.mkdir(parents=True, exist_ok=True)
    path = RESULTS_DIRECTORY / f"{experiment_id}.md"
    content = [f"# {experiment_id}: {title}", ""] + lines + [""]
    path.write_text("\n".join(content), encoding="utf-8")
    return path


@pytest.fixture(scope="session")
def report_writer():
    """Fixture handing benchmarks the report writer."""
    return write_experiment_report
