"""E15 -- aggregation pushdown: wall-clock pipelines vs client-side plans.

The aggregation pipeline earns its keep twice: the planner pushdown turns a
leading ``$match`` (and a covered ``$sort``+``$limit``) into index access
instead of a full scan, and the shard pushdown rewrites a pipeline into
per-shard partial stages plus a router merge, so a ``$group`` ships one
accumulator row per group per shard instead of every matching document.

E15 measures both against the strategy a client without a pipeline is forced
into -- fetch the documents through the client surface and aggregate in
application code:

* ``group_pushdown`` -- grouped count/sum over every document:
  ``aggregate([$group])`` vs fetch-all-then-group-in-Python.  On the 4-shard
  cluster this is the scatter--partial--merge acceptance case: the pushdown
  must beat the fetch-all baseline by >= 2x wall-clock.
* ``match_index`` -- grouped rollup of one indexed category:
  ``aggregate([$match, $group])`` (the ``$match`` rides the category index)
  vs fetch-all, filter and group client-side.
* ``top_k`` -- ``aggregate([$match, $sort, $limit])`` satisfied by an
  ordered walk of the counter index with the limit pushed into the walk
  (and onto every shard) vs fetch-all, sort and slice client-side.

All timings are real wall-clock (``time.perf_counter``) over repeated runs;
the report also records the pipeline ``explain`` so the access paths behind
the numbers are visible next to them.

CI smoke check (fails when the 4-shard ``$group`` pushdown does not reach
1.3x the fetch-all baseline)::

    PYTHONPATH=src python benchmarks/bench_aggregation.py --smoke
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path
from typing import Any, Callable

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.docstore.client import DocumentClient  # noqa: E402
from repro.docstore.topology import TopologySpec, build_topology  # noqa: E402
from repro.workloads.generator import RecordGenerator  # noqa: E402

LOAD_BATCH = 500

TOPOLOGIES: dict[str, TopologySpec] = {
    "standalone": TopologySpec(),
    "sharded": TopologySpec(shards=4, shard_key="_id", shard_strategy="hash"),
    "replicated": TopologySpec(replicas=3),
}

# The CI floor: the 4-shard $group pushdown must beat the fetch-all baseline
# by 1.3x even on the tiny smoke dataset; the full-size acceptance bar is the
# issue's 2x, recorded in the report and checked on full runs.
SMOKE_PUSHDOWN_FLOOR = 1.3
FULL_PUSHDOWN_TARGET = 2.0

GROUP_PIPELINE = [
    {"$group": {"_id": "$category",
                "count": {"$count": {}},
                "total": {"$sum": "$counter"}}},
]
MATCH_GROUP_PIPELINE = [
    {"$match": {"category": "cat1"}},
    {"$group": {"_id": "$active",
                "count": {"$count": {}},
                "total": {"$sum": "$counter"}}},
]
TOP_K = 10


def _time(callable_: Callable[[], Any], iterations: int) -> tuple[float, Any]:
    """Average wall seconds per call over ``iterations`` runs (after one
    untimed priming call that warms plan and chunk caches)."""
    result = callable_()
    start = time.perf_counter()
    for __ in range(iterations):
        result = callable_()
    return (time.perf_counter() - start) / iterations, result


def _group_reference(documents: list[dict[str, Any]],
                     key: str) -> list[dict[str, Any]]:
    """What a client without a pipeline writes: group fetched docs in Python."""
    groups: dict[Any, dict[str, Any]] = {}
    for document in documents:
        value = document.get(key)
        row = groups.setdefault(value, {"_id": value, "count": 0, "total": 0})
        row["count"] += 1
        counter = document.get("counter")
        if isinstance(counter, (int, float)) and not isinstance(counter, bool):
            row["total"] += counter
    return sorted(groups.values(), key=lambda row: str(row["_id"]))


def _phase(name: str, pushdown_seconds: float, baseline_seconds: float,
           documents_returned: int) -> dict[str, Any]:
    speedup = (baseline_seconds / pushdown_seconds
               if pushdown_seconds > 0 else 0.0)
    return {
        "phase": name,
        "pushdown_ms": round(pushdown_seconds * 1000.0, 3),
        "baseline_ms": round(baseline_seconds * 1000.0, 3),
        "speedup": round(speedup, 2),
        "documents_returned": documents_returned,
    }


def run_scenario(name: str, spec: TopologySpec, records: int,
                 iterations: int, seed: int = 42) -> dict[str, Any]:
    """Load one deployment shape and time the three pushdown phases."""
    server = build_topology(spec)
    client = DocumentClient(server)
    handle = client.collection("benchmark", "usertable")
    generator = RecordGenerator(field_count=6, field_length=100)
    rng = random.Random(seed)
    for start in range(0, records, LOAD_BATCH):
        handle.insert_many([generator.record(index, rng)
                            for index in range(start,
                                               min(start + LOAD_BATCH, records))])
    handle.create_index("category")
    handle.create_index("counter")
    if spec.is_sharded:
        server.maintain("benchmark", "usertable")

    phases: dict[str, Any] = {}

    # Phase 1: full $group -- the scatter--partial--merge acceptance case.
    group_seconds, group_rows = _time(
        lambda: handle.aggregate(GROUP_PIPELINE), iterations)
    fetch_group_seconds, fetch_rows = _time(
        lambda: _group_reference(handle.find({}), "category"), iterations)
    assert group_rows == fetch_rows, (name, group_rows[:2], fetch_rows[:2])
    phases["group_pushdown"] = _phase(
        "group_pushdown", group_seconds, fetch_group_seconds, len(group_rows))

    # Phase 2: indexed $match into $group -- planner pushdown.
    match_seconds, match_rows = _time(
        lambda: handle.aggregate(MATCH_GROUP_PIPELINE), iterations)
    baseline_seconds, baseline_rows = _time(
        lambda: _group_reference(
            [document for document in handle.find({})
             if document.get("category") == "cat1"], "active"),
        iterations)
    assert match_rows == baseline_rows, (name, match_rows, baseline_rows)
    phases["match_index"] = _phase(
        "match_index", match_seconds, baseline_seconds, len(match_rows))

    # Phase 3: top-k -- ordered index walk with limit pushdown.
    floor = records // 2
    top_k_pipeline = [
        {"$match": {"counter": {"$gte": floor}}},
        {"$sort": {"counter": 1}},
        {"$limit": TOP_K},
    ]
    top_seconds, top_rows = _time(
        lambda: handle.aggregate(top_k_pipeline), iterations)
    sort_seconds, sorted_rows = _time(
        lambda: sorted(
            (document for document in handle.find({})
             if document.get("counter", 0) >= floor),
            key=lambda document: document["counter"])[:TOP_K],
        iterations)
    assert [row["_id"] for row in top_rows] == \
        [row["_id"] for row in sorted_rows], name
    phases["top_k"] = _phase("top_k", top_seconds, sort_seconds, len(top_rows))

    explains = {
        "match_index": handle.explain(MATCH_GROUP_PIPELINE),
        "top_k": handle.explain(top_k_pipeline),
    }
    summary = ", ".join(f"{phase['phase']}={phase['speedup']:.2f}x"
                        for phase in phases.values())
    print(f"[{name:>11}] {summary}")
    return {"topology": spec.kind, "records": records,
            "phases": phases, "explain": explains}


def run(records: int, iterations: int, shapes: list[str]) -> dict[str, Any]:
    scenarios = {name: run_scenario(name, TOPOLOGIES[name], records, iterations)
                 for name in shapes}
    return {
        "benchmark": "E15_aggregation",
        "records": records,
        "iterations": iterations,
        "pushdown_target": FULL_PUSHDOWN_TARGET,
        "scenarios": scenarios,
    }


def group_speedup(report: dict[str, Any], shape: str) -> float:
    return report["scenarios"][shape]["phases"]["group_pushdown"]["speedup"]


def check_floor(report: dict[str, Any], floor: float) -> list[str]:
    """The CI guard: the sharded $group pushdown must beat fetch-all."""
    failures = []
    achieved = group_speedup(report, "sharded")
    if achieved < floor:
        failures.append(
            f"4-shard $group pushdown reached only {achieved:.2f}x the "
            f"fetch-all baseline (floor {floor:.1f}x)")
    for name, scenario in report["scenarios"].items():
        access = scenario["explain"]["match_index"]
        plans = ([plan["winning_plan"] for plan in
                  access["shard_plans"].values()]
                 if access.get("sharded") else [access["winning_plan"]])
        for plan in plans:
            if plan["access_path"] == "FULL_SCAN":
                failures.append(
                    f"{name}: indexed $match fell back to FULL_SCAN")
    return failures


def write_markdown(report: dict[str, Any], path: Path) -> None:
    lines = [
        "# E15 -- aggregation pushdown",
        "",
        f"{report['records']} records per deployment, wall-clock averaged "
        f"over {report['iterations']} runs.  Baselines fetch the documents "
        "through the client surface and aggregate in Python -- the plan a "
        "client without a pipeline is forced into.",
        "",
    ]
    for name, scenario in report["scenarios"].items():
        lines += [f"## {name}", "",
                  "| phase | pushdown ms | fetch-all ms | speedup | rows |",
                  "|--|--:|--:|--:|--:|"]
        for phase in scenario["phases"].values():
            lines.append(
                f"| {phase['phase']} | {phase['pushdown_ms']:.2f} | "
                f"{phase['baseline_ms']:.2f} | {phase['speedup']:.2f}x | "
                f"{phase['documents_returned']} |")
        lines.append("")
    achieved = group_speedup(report, "sharded")
    verdict = ("meets" if achieved >= report["pushdown_target"] else "misses")
    lines += [
        f"4-shard `$group` pushdown: **{achieved:.2f}x** the router "
        f"fetch-all baseline ({verdict} the >= "
        f"{report['pushdown_target']:.0f}x acceptance bar).",
        "",
    ]
    path.write_text("\n".join(lines))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small sharded run with the CI pushdown floor")
    parser.add_argument("--records", type=int, default=None,
                        help="documents loaded per scenario")
    parser.add_argument("--iterations", type=int, default=None,
                        help="timed repetitions per phase")
    parser.add_argument("--json", type=Path,
                        default=(Path(__file__).parent / "results"
                                 / "E15_aggregation.json"),
                        help="where to write the machine-readable report")
    arguments = parser.parse_args()

    smoke = arguments.smoke
    records = arguments.records or (2_000 if smoke else 8_000)
    iterations = arguments.iterations or (3 if smoke else 5)
    shapes = ["sharded"] if smoke else list(TOPOLOGIES)

    report = run(records, iterations, shapes)
    report["mode"] = "smoke" if smoke else "full"

    arguments.json.parent.mkdir(parents=True, exist_ok=True)
    arguments.json.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {arguments.json}")
    if not smoke:
        markdown = arguments.json.with_suffix(".md")
        write_markdown(report, markdown)
        print(f"wrote {markdown}")

    floor = SMOKE_PUSHDOWN_FLOOR if smoke else FULL_PUSHDOWN_TARGET
    failures = check_floor(report, floor)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if smoke:
        print(f"smoke ok: 4-shard $group pushdown "
              f"{group_speedup(report, 'sharded'):.2f}x fetch-all "
              f"(floor {SMOKE_PUSHDOWN_FLOOR}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
