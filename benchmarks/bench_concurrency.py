"""E14 -- true concurrent serving: wall-clock throughput vs client threads.

E13 measured the single-threaded constant factors of the hot path; E14
measures whether throughput *scales* when real client threads hammer one
deployment -- the axis the paper's storage engines differ on most
(collection-level locking in mmapv1 vs document-level locking in
wiredTiger).

Pure CPU-bound Python cannot scale across threads under the GIL, so the
benchmark turns the cost model's simulated service times into *real* ones:
``CostParameters.real_service_scale`` makes every engine charge sleep its
scaled duration **while the caller's locks are held**.  Sleeps release the
GIL, so whatever latches an operation holds across its service time are
exactly what limits concurrent throughput:

* point reads are latch-free (copy-on-write structures) -- their service
  times overlap fully and read throughput climbs with the thread count,
* wiredTiger writes hold one lock stripe -- disjoint writes overlap,
* mmapv1 writes hold the collection-exclusive lock -- writes flatline.

Phases per deployment shape (standalone / sharded / replicated, built
through ``TopologySpec`` like every scenario):

* ``load``   -- single-threaded batch insert (reported, not swept),
* ``read``   -- zipfian point reads from N shared-handle client threads,
* ``update`` -- disjoint-key updates from N client threads,

each swept over a thread ladder, plus a standalone wiredTiger-vs-mmapv1
write-scaling contrast and a contended-hot-path profile (lock waits, plan
cache, cost counters) captured at the highest thread count.

CI smoke check (fails when 4-thread standalone reads do not reach 1.5x the
single-thread throughput)::

    PYTHONPATH=src python benchmarks/bench_concurrency.py --smoke
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import threading
import time
from pathlib import Path
from typing import Any, Callable

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.docstore.client import DocumentClient  # noqa: E402
from repro.docstore.cost import CostParameters  # noqa: E402
from repro.docstore.server import DocumentServer  # noqa: E402
from repro.docstore.topology import TopologySpec, build_topology  # noqa: E402
from repro.workloads.distributions import make_distribution  # noqa: E402
from repro.workloads.generator import RecordGenerator  # noqa: E402

LOAD_BATCH = 500

# Simulated-to-real service-time scale.  Point reads charge ~20-110us of
# simulated time, so this puts their real service time at ~150-800us --
# comfortably above Linux timer slack (~50us), small enough that a full
# sweep stays under a few minutes.
REAL_SERVICE_SCALE = 8.0

TOPOLOGIES: dict[str, TopologySpec] = {
    "standalone": TopologySpec(),
    "sharded": TopologySpec(shards=4, shard_key="_id", shard_strategy="hash"),
    "replicated": TopologySpec(replicas=3, write_concern="majority"),
}

# The CI scaling floor: 4-thread standalone reads must beat 1.5x the
# single-thread run.  Latch-free reads scale ~3-4x here; 1.5x leaves a wide
# margin for noisy shared CI runners.
SMOKE_SCALING_FLOOR = 1.5
FULL_SCALING_TARGET = 2.0  # the E14 acceptance bar, recorded in the report


def _run_client_threads(thread_count: int,
                        worker: Callable[[int], None]) -> float:
    """Run ``worker(thread_id)`` on N threads; return the wall seconds from
    simultaneous release (barrier) to the last join."""
    barrier = threading.Barrier(thread_count + 1)
    errors: list[Exception] = []
    errors_lock = threading.Lock()

    def runner(thread_id: int) -> None:
        try:
            barrier.wait()
            worker(thread_id)
        except Exception as error:  # noqa: BLE001 - re-raised below
            with errors_lock:
                errors.append(error)

    threads = [threading.Thread(target=runner, args=(thread_id,))
               for thread_id in range(thread_count)]
    for thread in threads:
        thread.start()
    barrier.wait()
    start = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    if errors:
        raise errors[0]
    return elapsed


def _phase(operations: int, seconds: float) -> dict[str, float]:
    return {
        "operations": operations,
        "wall_seconds": round(seconds, 6),
        "ops_per_sec": round(operations / seconds, 1) if seconds > 0 else 0.0,
    }


def _sweep(thread_ladder: list[int], total_operations: int,
           make_worker: Callable[[int, int], Callable[[int], None]]) -> dict[str, Any]:
    """Time ``total_operations`` split across each ladder rung's threads.

    ``make_worker(threads, per_thread)`` returns the per-thread body; the
    total operation count stays fixed so every rung does the same work and
    the ops/sec ratio between rungs is the scaling factor.
    """
    results: dict[str, Any] = {}
    for thread_count in thread_ladder:
        per_thread = total_operations // thread_count
        operations = per_thread * thread_count
        worker = make_worker(thread_count, per_thread)
        seconds = _run_client_threads(thread_count, worker)
        results[str(thread_count)] = _phase(operations, seconds)
    base = results[str(thread_ladder[0])]["ops_per_sec"]
    for thread_count in thread_ladder:
        entry = results[str(thread_count)]
        entry["speedup"] = round(entry["ops_per_sec"] / base, 2) if base else 0.0
    return results


def run_scenario(name: str, spec: TopologySpec, records: int, operations: int,
                 thread_ladder: list[int], seed: int = 42) -> dict[str, Any]:
    """Load one deployment shape and sweep reads and updates over threads."""
    server = build_topology(
        spec, cost_parameters=CostParameters(real_service_scale=REAL_SERVICE_SCALE))
    client = DocumentClient(server)
    handle = client.collection("benchmark", "usertable")
    generator = RecordGenerator(field_count=4, field_length=40)
    rng = random.Random(seed)
    distribution = make_distribution("zipfian", records)

    batches = [[generator.record(index, rng)
                for index in range(start, min(start + LOAD_BATCH, records))]
               for start in range(0, records, LOAD_BATCH)]
    load_start = time.perf_counter()
    for batch in batches:
        handle.insert_many(batch)
    load = _phase(records, time.perf_counter() - load_start)

    # Reads: every thread draws from its own pre-generated zipfian key
    # sequence against the one shared handle (shared plan cache, shared
    # engine, shared locks -- the contended hot path).
    def make_read_worker(thread_count: int,
                         per_thread: int) -> Callable[[int], None]:
        key_sets = [[generator.key(distribution.next_key(rng))
                     for __ in range(per_thread)]
                    for __ in range(thread_count)]

        def worker(thread_id: int) -> None:
            for key in key_sets[thread_id]:
                handle.find_with_cost({"_id": key})

        return worker

    reads = _sweep(thread_ladder, operations, make_read_worker)

    # Updates: threads write *disjoint* keys, the workload document-level
    # locking is built for (same-key writers serialise by design).
    def make_update_worker(thread_count: int,
                           per_thread: int) -> Callable[[int], None]:
        key_sets = [
            [generator.key((thread_id + thread_count * index) % records)
             for index in range(per_thread)]
            for thread_id in range(thread_count)
        ]
        fragments = [generator.update_fragment(rng) for __ in range(32)]

        def worker(thread_id: int) -> None:
            for index, key in enumerate(key_sets[thread_id]):
                handle.update_one({"_id": key}, fragments[index % 32])

        return worker

    updates = _sweep(thread_ladder, max(1, operations // 4), make_update_worker)

    scenario: dict[str, Any] = {
        "topology": spec.kind,
        "records": records,
        "load": load,
        "read_threads": reads,
        "update_threads": updates,
    }
    if name == "standalone":
        scenario["contended_profile"] = _standalone_profile(server)
    documents = handle.count_documents({})
    assert documents == records, (name, documents, records)
    return scenario


def _standalone_profile(server: DocumentServer) -> dict[str, Any]:
    """The contended-hot-path profile after the sweep: where threads waited."""
    collection = server.database("benchmark").collection("usertable")
    return {
        "locks": collection.engine.locks.stats.snapshot(),
        "plan_cache": collection.planner.cache_stats(),
        "costs": collection.engine.costs.snapshot(),
    }


def run_engine_contrast(records: int, operations: int,
                        threads: int) -> dict[str, Any]:
    """Disjoint-key updates at N threads: wiredTiger vs mmapv1 standalone.

    The paper's core claim, measured in wall-clock form: document-level
    locking lets disjoint writes overlap their service times, collection-
    level locking serialises them.
    """
    contrast: dict[str, Any] = {"threads": threads}
    for engine in ("wiredtiger", "mmapv1"):
        server = DocumentServer(
            engine,
            cost_parameters=CostParameters(real_service_scale=REAL_SERVICE_SCALE))
        handle = DocumentClient(server).collection("benchmark", "usertable")
        generator = RecordGenerator(field_count=4, field_length=40)
        rng = random.Random(7)
        handle.insert_many([generator.record(index, rng)
                            for index in range(records)])
        per_thread = operations // threads
        fragments = [generator.update_fragment(rng) for __ in range(32)]

        def worker(thread_id: int) -> None:
            for index in range(per_thread):
                key = generator.key((thread_id + threads * index) % records)
                handle.update_one({"_id": key}, fragments[index % 32])

        single = _run_client_threads(1, lambda __: worker(0))
        multi = _run_client_threads(threads, worker)
        single_rate = per_thread / single if single else 0.0
        multi_rate = per_thread * threads / multi if multi else 0.0
        contrast[engine] = {
            "single_thread_ops_per_sec": round(single_rate, 1),
            "multi_thread_ops_per_sec": round(multi_rate, 1),
            "write_scaling": round(multi_rate / single_rate, 2)
            if single_rate else 0.0,
        }
    return contrast


def run(records: int, operations: int, thread_ladder: list[int],
        shapes: list[str], contrast: bool) -> dict[str, Any]:
    scenarios: dict[str, Any] = {}
    for name in shapes:
        scenarios[name] = run_scenario(name, TOPOLOGIES[name], records,
                                       operations, thread_ladder)
        reads = scenarios[name]["read_threads"]
        summary = ", ".join(
            f"{threads}t={entry['ops_per_sec']:,.0f} ops/s "
            f"({entry['speedup']:.2f}x)"
            for threads, entry in reads.items())
        print(f"[{name:>11}] reads: {summary}")
    report: dict[str, Any] = {
        "benchmark": "E14_concurrency",
        "records": records,
        "operations": operations,
        "thread_ladder": thread_ladder,
        "real_service_scale": REAL_SERVICE_SCALE,
        "scaling_target": FULL_SCALING_TARGET,
        "scenarios": scenarios,
    }
    if contrast:
        report["engine_write_contrast"] = run_engine_contrast(
            records=min(records, 2000), operations=max(400, operations // 8),
            threads=4)
        for engine in ("wiredtiger", "mmapv1"):
            entry = report["engine_write_contrast"][engine]
            print(f"[{engine:>11}] 4-thread write scaling: "
                  f"{entry['write_scaling']:.2f}x")
    return report


def read_speedup(report: dict[str, Any], shape: str, threads: int) -> float:
    return report["scenarios"][shape]["read_threads"][str(threads)]["speedup"]


def check_floor(report: dict[str, Any], floor: float) -> list[str]:
    """The CI scaling guard on standalone 4-thread reads."""
    achieved = read_speedup(report, "standalone", 4)
    if achieved < floor:
        return [f"standalone reads at 4 threads reached only {achieved:.2f}x "
                f"single-thread throughput (floor {floor:.1f}x)"]
    return []


def write_markdown(report: dict[str, Any], path: Path) -> None:
    lines = [
        "# E14 -- concurrent serving throughput",
        "",
        f"Thread ladder {report['thread_ladder']}, "
        f"{report['records']} records, {report['operations']} read ops, "
        f"real_service_scale={report['real_service_scale']}.",
        "",
        "Simulated engine service times run as real (GIL-releasing) sleeps "
        "held under each operation's latches, so the scaling below is real "
        "wall-clock scaling produced by the lock granularity.",
        "",
    ]
    for name, scenario in report["scenarios"].items():
        lines += [f"## {name}", "",
                  "| threads | reads ops/s | read speedup | "
                  "updates ops/s | update speedup |",
                  "|--:|--:|--:|--:|--:|"]
        for threads in report["thread_ladder"]:
            read = scenario["read_threads"][str(threads)]
            update = scenario["update_threads"][str(threads)]
            lines.append(
                f"| {threads} | {read['ops_per_sec']:,.0f} | "
                f"{read['speedup']:.2f}x | {update['ops_per_sec']:,.0f} | "
                f"{update['speedup']:.2f}x |")
        lines.append("")
    contrast = report.get("engine_write_contrast")
    if contrast:
        lines += [
            "## Engine write-scaling contrast "
            f"({contrast['threads']} threads, disjoint keys)", "",
            "| engine | 1-thread ops/s | multi-thread ops/s | scaling |",
            "|--|--:|--:|--:|",
        ]
        for engine in ("wiredtiger", "mmapv1"):
            entry = contrast[engine]
            lines.append(
                f"| {engine} | {entry['single_thread_ops_per_sec']:,.0f} | "
                f"{entry['multi_thread_ops_per_sec']:,.0f} | "
                f"{entry['write_scaling']:.2f}x |")
        lines.append("")
    achieved = read_speedup(report, "standalone", 4)
    verdict = "meets" if achieved >= report["scaling_target"] else "misses"
    lines += [
        f"Standalone 4-thread read speedup: **{achieved:.2f}x** "
        f"({verdict} the >= {report['scaling_target']:.0f}x acceptance bar).",
        "",
    ]
    path.write_text("\n".join(lines))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small standalone run with the CI scaling floor")
    parser.add_argument("--records", type=int, default=None,
                        help="documents loaded per scenario")
    parser.add_argument("--operations", type=int, default=None,
                        help="total read operations per thread rung")
    parser.add_argument("--json", type=Path,
                        default=(Path(__file__).parent / "results"
                                 / "E14_concurrency.json"),
                        help="where to write the machine-readable report")
    arguments = parser.parse_args()

    smoke = arguments.smoke
    records = arguments.records or (1_000 if smoke else 4_000)
    operations = arguments.operations or (1_200 if smoke else 4_000)
    thread_ladder = [1, 4] if smoke else [1, 2, 4, 8]
    shapes = ["standalone"] if smoke else ["standalone", "sharded", "replicated"]

    report = run(records, operations, thread_ladder, shapes,
                 contrast=not smoke)
    report["mode"] = "smoke" if smoke else "full"

    arguments.json.parent.mkdir(parents=True, exist_ok=True)
    arguments.json.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {arguments.json}")
    if not smoke:
        markdown = arguments.json.with_suffix(".md")
        write_markdown(report, markdown)
        print(f"wrote {markdown}")

    floor = SMOKE_SCALING_FLOOR if smoke else 1.0
    failures = check_floor(report, floor)
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if smoke:
        print(f"smoke ok: standalone 4-thread reads scaled "
              f"{read_speedup(report, 'standalone', 4):.2f}x "
              f"(floor {SMOKE_SCALING_FLOOR}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
