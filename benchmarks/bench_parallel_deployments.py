"""E3 -- parallel execution over multiple identical deployments (requirement ii).

The evaluation's jobs are independent, so with D identical deployments the
simulated makespan should drop close to 1/D until the job queue runs dry.
The harness regenerates the "deployments -> simulated makespan / speed-up"
series and benchmarks the scheduler's dispatch throughput.
"""

from __future__ import annotations

import pytest

from repro.agent.fleet import AgentFleet
from repro.agents.mongodb_agent import MongoDbAgent, register_mongodb_system
from repro.core.control import ChronosControl
from repro.util.clock import SimulatedClock

JOB_THREADS = [1, 2, 4, 8, 1, 2, 4, 8]  # eight jobs
DEPLOYMENT_COUNTS = [1, 2, 4]


def run_with_deployments(deployments: int) -> dict:
    """Run the same 8-job evaluation on ``deployments`` identical deployments."""
    clock = SimulatedClock()
    control = ChronosControl(clock=clock)
    admin = control.users.get_by_username("admin")
    system = register_mongodb_system(control, owner_id=admin.id)
    deployment_ids = [control.deployments.register(system.id, f"node-{i}").id
                      for i in range(deployments)]
    project = control.projects.create("parallel", admin)
    experiment = control.experiments.create(project.id, system.id, "parallel",
                                            parameters={
                                                "storage_engine": ["wiredtiger"],
                                                "threads": JOB_THREADS[:4],
                                                "record_count": 80,
                                                "operation_count": 150,
                                                "query_mix": "50:50",
                                                "distribution": "zipfian",
                                                "seed": [1, 2],
                                            })
    evaluation, jobs = control.evaluations.create(experiment.id,
                                                  deployment_ids=deployment_ids)
    fleet = AgentFleet(control, system.id, deployment_ids, MongoDbAgent, clock=clock)
    report = fleet.drive_evaluation(evaluation.id)

    # Simulated makespan: the busiest deployment's share of the total simulated
    # work (jobs are balanced FIFO, so this mirrors a real parallel run).
    results = control.results.for_jobs(
        [job.id for job in control.evaluations.jobs(evaluation.id)])
    per_job_seconds = [result.data["simulated_seconds"] for result in results]
    total = sum(per_job_seconds)
    rounds_per_deployment = max(report.per_deployment.values())
    makespan = total * rounds_per_deployment / len(per_job_seconds)
    return {
        "deployments": deployments,
        "jobs": report.jobs_finished,
        "rounds": rounds_per_deployment,
        "total_simulated_seconds": total,
        "makespan": makespan,
    }


@pytest.fixture(scope="module")
def scaling_series(report_writer):
    series = [run_with_deployments(count) for count in DEPLOYMENT_COUNTS]
    baseline = series[0]["makespan"]
    lines = ["| deployments | jobs | max jobs per deployment | speed-up |",
             "| --- | --- | --- | --- |"]
    for entry in series:
        speedup = baseline / entry["makespan"] if entry["makespan"] else 0.0
        lines.append(f"| {entry['deployments']} | {entry['jobs']} | "
                     f"{entry['rounds']} | {speedup:.2f}x |")
    report_writer("E3_parallel_deployments", "Speed-up with identical deployments", lines)
    return series


class TestScalingShape:
    def test_all_jobs_finish_regardless_of_deployments(self, scaling_series):
        assert all(entry["jobs"] == 8 for entry in scaling_series)

    def test_speedup_is_near_linear_until_queue_empties(self, scaling_series):
        baseline = scaling_series[0]["makespan"]
        two = baseline / scaling_series[1]["makespan"]
        four = baseline / scaling_series[2]["makespan"]
        assert two > 1.6
        assert four > 3.0

    def test_jobs_balanced_across_deployments(self, scaling_series):
        assert scaling_series[1]["rounds"] == 4   # 8 jobs over 2 deployments
        assert scaling_series[2]["rounds"] == 2   # 8 jobs over 4 deployments


@pytest.mark.benchmark(group="E3-parallel")
@pytest.mark.parametrize("deployments", DEPLOYMENT_COUNTS)
def test_benchmark_fleet_execution(benchmark, deployments):
    """Wall-clock cost of driving the 8-job evaluation with N deployments."""
    outcome = benchmark.pedantic(run_with_deployments, args=(deployments,),
                                 rounds=2, iterations=1)
    benchmark.extra_info.update({"deployments": deployments,
                                 "makespan_simulated": outcome["makespan"]})
    assert outcome["jobs"] == 8
