"""E8 -- multiple Systems under Evaluation through one Chronos Control instance.

The architecture of Fig. 1 shows independent SuEs (system A ... system Z)
sharing one Chronos Control.  This harness evaluates the document store and
the key-value store concurrently and checks that the shared instance tracks
both correctly; the benchmark measures the combined orchestration cost.
"""

from __future__ import annotations

import pytest

from repro.agent.fleet import AgentFleet
from repro.agents.kvstore_agent import KeyValueStoreAgent, register_kvstore_system
from repro.agents.mongodb_agent import MongoDbAgent, register_mongodb_system
from repro.core.control import ChronosControl
from repro.util.clock import SimulatedClock


def run_multi_sue() -> dict:
    clock = SimulatedClock()
    control = ChronosControl(clock=clock)
    admin = control.users.get_by_username("admin")
    project = control.projects.create("multi-sue", admin)

    mongodb = register_mongodb_system(control, owner_id=admin.id)
    kvstore = register_kvstore_system(control, owner_id=admin.id)
    mongo_deployments = [control.deployments.register(mongodb.id, f"mongo-{i}").id
                         for i in range(2)]
    kv_deployment = control.deployments.register(kvstore.id, "kv-1").id

    mongo_experiment = control.experiments.create(project.id, mongodb.id, "mongo",
                                                  parameters={
                                                      "storage_engine": ["wiredtiger", "mmapv1"],
                                                      "threads": [1, 4],
                                                      "record_count": 80,
                                                      "operation_count": 150,
                                                      "query_mix": "80:20",
                                                      "distribution": "zipfian"})
    kv_experiment = control.experiments.create(project.id, kvstore.id, "kv",
                                               parameters={
                                                   "engine": ["hash", "log"],
                                                   "key_count": 200,
                                                   "operation_count": 400,
                                                   "value_size": 128,
                                                   "write_fraction": 0.5})
    mongo_evaluation, mongo_jobs = control.evaluations.create(
        mongo_experiment.id, deployment_ids=mongo_deployments)
    kv_evaluation, kv_jobs = control.evaluations.create(
        kv_experiment.id, deployment_ids=[kv_deployment])

    AgentFleet(control, mongodb.id, mongo_deployments, MongoDbAgent,
               clock=clock).drive_evaluation(mongo_evaluation.id)
    AgentFleet(control, kvstore.id, [kv_deployment], KeyValueStoreAgent,
               clock=clock).drive_evaluation(kv_evaluation.id)

    statistics = control.statistics()
    kv_results = control.results.for_jobs(
        [job.id for job in control.evaluations.jobs(kv_evaluation.id)])
    mongo_results = control.results.for_jobs(
        [job.id for job in control.evaluations.jobs(mongo_evaluation.id)])
    return {
        "statistics": statistics,
        "mongo_jobs": len(mongo_jobs),
        "kv_jobs": len(kv_jobs),
        "mongo_results": [result.data for result in mongo_results],
        "kv_results": [result.data for result in kv_results],
    }


@pytest.fixture(scope="module")
def multi_sue_outcome(report_writer):
    outcome = run_multi_sue()
    lines = ["| system | jobs | example metric |", "| --- | --- | --- |"]
    lines.append(f"| mongodb (2 deployments) | {outcome['mongo_jobs']} | "
                 f"{outcome['mongo_results'][0]['throughput_ops_per_sec']:,.0f} ops/s |")
    lines.append(f"| kvstore (1 deployment) | {outcome['kv_jobs']} | "
                 f"{outcome['kv_results'][0]['throughput_ops_per_sec']:,.0f} ops/s |")
    lines += ["", f"Instance statistics: `{outcome['statistics']['jobs']}`"]
    report_writer("E8_multi_sue", "Two SuEs through one Chronos Control instance", lines)
    return outcome


class TestMultiSueShape:
    def test_both_evaluations_finish(self, multi_sue_outcome):
        jobs = multi_sue_outcome["statistics"]["jobs"]
        assert jobs["finished"] == multi_sue_outcome["mongo_jobs"] + multi_sue_outcome["kv_jobs"]
        assert jobs["failed"] == 0

    def test_results_belong_to_the_right_system(self, multi_sue_outcome):
        assert all("storage_engine" in result["parameters"]
                   for result in multi_sue_outcome["mongo_results"])
        assert all(result["engine"] in ("hash", "log")
                   for result in multi_sue_outcome["kv_results"])

    def test_systems_registered_side_by_side(self, multi_sue_outcome):
        assert multi_sue_outcome["statistics"]["systems"] == 2
        assert multi_sue_outcome["statistics"]["deployments"] == 3


@pytest.mark.benchmark(group="E8-multi-sue")
def test_benchmark_multi_sue_orchestration(benchmark):
    """Wall-clock cost of evaluating two SuEs through one Control instance."""
    outcome = benchmark.pedantic(run_multi_sue, rounds=2, iterations=1)
    assert outcome["statistics"]["jobs"]["failed"] == 0
