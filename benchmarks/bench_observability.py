"""E16 -- observability overhead: what the operation profiler costs.

PR 8 threads a profiler gate through every hot-path operation.  E16 measures
what that gate costs on E13's most sensitive phase -- zipfian point reads on
a standalone server -- under three configurations:

* ``disabled`` -- the collection's profiler reference removed entirely
  (the pre-PR hot path: no gate target, one ``None`` check),
* ``level0``   -- the shipped default: profiler wired but off, so every
  operation pays exactly one attribute load and one branch,
* ``level2``   -- full profiling with ``slow_ms=0``: every operation builds
  a span, renders its query shape and lands in the slow-op log.

The smoke gate asserts ``level0`` stays within 5% of ``disabled`` (the PR's
acceptance criterion: observability off must be free), and sanity-checks
``level2`` -- the slow-op log must hold exactly one JSON-round-trippable
entry per read.  Rounds are interleaved (disabled/level0/level2, three
rounds, best-of) so CPU-frequency drift hits all configurations equally.

Run standalone for the CI smoke check::

    PYTHONPATH=src python benchmarks/bench_observability.py --smoke
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path
from typing import Any

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.docstore.client import DocumentClient  # noqa: E402
from repro.docstore.server import DocumentServer  # noqa: E402
from repro.workloads.distributions import make_distribution  # noqa: E402
from repro.workloads.generator import RecordGenerator  # noqa: E402

LOAD_BATCH = 1000
ROUNDS = 3

#: Maximum relative slowdown profiling level 0 may impose on the read phase
#: versus a fully unwired profiler (the acceptance criterion of PR 8).
LEVEL0_MAX_OVERHEAD = 0.05

CONFIGS = ("disabled", "level0", "level2")


def _build(records: int, seed: int) -> tuple[DocumentServer, Any, list[str]]:
    """One loaded standalone server plus the pre-generated read keys."""
    server = DocumentServer("wiredtiger")
    handle = DocumentClient(server).collection("benchmark", "usertable")
    generator = RecordGenerator(field_count=10, field_length=100)
    rng = random.Random(seed)
    for start in range(0, records, LOAD_BATCH):
        batch = [generator.record(index, rng)
                 for index in range(start, min(start + LOAD_BATCH, records))]
        handle.insert_many(batch)
    distribution = make_distribution("zipfian", records)
    keys = [generator.key(distribution.next_key(rng)) for __ in range(records)]
    return server, handle, keys


def _configure(server: DocumentServer, handle: Any, config: str) -> None:
    if config == "disabled":
        # The pre-PR hot path: no profiler object at all on the collection.
        handle._target.profiler = None
        return
    handle._target.profiler = server.profiler
    if config == "level0":
        server.set_profiling(0)
    else:
        server.set_profiling(2, slow_ms=0.0, capacity=1 << 20)
    server.profiler.reset()


def _read_phase(handle: Any, keys: list[str], operations: int) -> float:
    """Time ``operations`` zipfian point reads; returns ops/sec."""
    start = time.perf_counter()
    for index in range(operations):
        handle.find_with_cost({"_id": keys[index % len(keys)]})
    elapsed = time.perf_counter() - start
    return operations / elapsed if elapsed > 0 else 0.0


def run(records: int, operations: int, seed: int = 42) -> dict[str, Any]:
    server, handle, keys = _build(records, seed)

    best: dict[str, float] = {config: 0.0 for config in CONFIGS}
    for round_index in range(ROUNDS):
        for config in CONFIGS:
            _configure(server, handle, config)
            rate = _read_phase(handle, keys, operations)
            best[config] = max(best[config], rate)
        print(f"round {round_index + 1}/{ROUNDS}: " + ", ".join(
            f"{config}={best[config]:,.0f} ops/s" for config in CONFIGS))

    # One final level-2 pass produces the correctness evidence: the slow-op
    # log must hold exactly one well-formed entry per read.
    _configure(server, handle, "level2")
    sampler_reads = min(operations, 2_000)
    from repro.docstore.observability import MetricsSampler

    sampler = MetricsSampler(server.metrics_snapshot, interval_seconds=0.01)
    sampler.sample()
    for index in range(sampler_reads):
        handle.find_with_cost({"_id": keys[index % len(keys)]})
        sampler.maybe_sample()
    sampler.sample()
    slow = server.get_slow_ops()
    describe = server.profiler.describe()
    assert describe["slow_ops_recorded"] == sampler_reads, describe
    assert len(slow) == sampler_reads, (len(slow), sampler_reads)
    round_tripped = json.loads(json.dumps(slow))
    for entry in round_tripped:
        assert entry["op"] == "query" and entry["ns"] == "benchmark.usertable"
        assert entry["access_path"] == "ID_LOOKUP", entry
        assert entry["docs_returned"] == 1, entry

    overhead = ((best["disabled"] - best["level0"]) / best["disabled"]
                if best["disabled"] > 0 else 0.0)
    return {
        "benchmark": "E16_observability",
        "records": records,
        "operations": operations,
        "rounds": ROUNDS,
        "read_ops_per_sec": {config: round(best[config], 1)
                             for config in CONFIGS},
        "level0_overhead": round(overhead, 4),
        "level2_slowdown": round(
            1.0 - best["level2"] / best["disabled"], 4)
        if best["disabled"] > 0 else 0.0,
        "level2_slow_ops": len(slow),
        "sampler": sampler.as_dict(),
    }


def check_gates(report: dict[str, Any]) -> list[str]:
    failures = []
    overhead = report["level0_overhead"]
    if overhead > LEVEL0_MAX_OVERHEAD:
        failures.append(
            f"level-0 profiling costs {overhead:.1%} on the read phase, over "
            f"the {LEVEL0_MAX_OVERHEAD:.0%} budget "
            f"({report['read_ops_per_sec']})")
    return failures


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small run with the level-0 overhead gate (CI)")
    parser.add_argument("--records", type=int, default=None)
    parser.add_argument("--operations", type=int, default=None,
                        help="measured reads per configuration per round")
    parser.add_argument("--json", type=Path,
                        default=Path(__file__).parent / "results"
                        / "E16_observability.json",
                        help="where to write the machine-readable report")
    arguments = parser.parse_args()

    records = arguments.records or (2_000 if arguments.smoke else 20_000)
    operations = arguments.operations or (10_000 if arguments.smoke else 50_000)

    report = run(records, operations)
    report["mode"] = "smoke" if arguments.smoke else "full"
    print(f"level-0 overhead on reads: {report['level0_overhead']:+.2%} "
          f"(budget {LEVEL0_MAX_OVERHEAD:.0%}); "
          f"level-2 slowdown: {report['level2_slowdown']:+.2%}; "
          f"slow ops recorded: {report['level2_slow_ops']}")

    arguments.json.parent.mkdir(parents=True, exist_ok=True)
    arguments.json.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {arguments.json}")

    if arguments.smoke:
        failures = check_gates(report)
        if failures:
            for failure in failures:
                print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print("smoke ok: level-0 profiling is within its overhead budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
