"""E12 -- deployment topologies: one workload across every cluster shape.

The topology layer makes "what cluster shape am I evaluating" a declared
property of a control-plane deployment: a serializable
:class:`~repro.docstore.topology.TopologySpec` stored in
``Deployment.environment`` and built by
:func:`~repro.docstore.topology.build_topology`.  This experiment exercises
that end to end: one project, one SuE (``mongodb``), one experiment -- and
one deployment per topology (standalone server, three-member replica set at
``w=majority``, four-shard cluster, replicated cluster), each evaluated
through the scheduler/agent/result pipeline by the shared
:class:`~repro.agents.mongo_agent.MongoAgent` with *zero* topology
parameters in the jobs.

The comparison shows the classic trade-offs from one identical, seeded
parameter point (mmapv1, 8 threads, 50:50 mix):

* **Scale-out**: the sharded cluster out-throughputs the standalone server
  (mmapv1's collection-level lock serialises one server; shards have
  independent locks).
* **Durability tax**: the ``w=majority`` replica set pays the replication
  round-trip on every write, so its average latency is above standalone.
* **Equivalence**: every topology finishes the run holding the same number
  of documents -- same workload, same seed, different shapes.
* **Honest accounting**: chunk migrations performed by the balancer are
  charged to the operations (and load) that triggered them
  (``migration_seconds`` in the cluster statistics).

Run standalone for the CI smoke check::

    PYTHONPATH=src python benchmarks/bench_topologies.py --smoke
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Any

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.demo import (  # noqa: E402
    TOPOLOGY_COMPARISON,
    run_topology_comparison,
    topology_comparison_rows,
)

SMOKE_PARAMETERS = {
    "storage_engine": "mmapv1",
    "threads": 8,
    "record_count": 120,
    "operation_count": 240,
    "query_mix": "50:50",
    "distribution": "zipfian",
    "seed": 42,
}

FULL_PARAMETERS = {
    "storage_engine": "mmapv1",
    "threads": 8,
    "record_count": 300,
    "operation_count": 600,
    "query_mix": "50:50",
    "distribution": "zipfian",
    "seed": 42,
}


def run_comparison(parameters: dict[str, Any] | None = None) -> dict[str, dict[str, Any]]:
    """One control-plane evaluation per topology; returns rows keyed by name."""
    setup = run_topology_comparison(parameters=parameters or FULL_PARAMETERS)
    return topology_comparison_rows(setup)


def build_report_lines() -> list[str]:
    rows = run_comparison()
    lines = ["## One workload, every deployment topology "
             "(mmapv1, 8 threads, 50:50 mix, one control-plane evaluation "
             "per declared topology)", "",
             "| deployment | topology | throughput (ops/s) | avg (ms) "
             "| p95 (ms) | documents | migrations | migration cost (s) |",
             "| --- | --- | --- | --- | --- | --- | --- | --- |"]
    for name, row in rows.items():
        lines.append(
            f"| {name} | {row['reported_kind']} | {row['throughput']:,.0f} "
            f"| {row['latency_avg_ms']:.4f} | {row['latency_p95_ms']:.4f} "
            f"| {row['documents']:g} | {row['migrations']:g} "
            f"| {row['migration_seconds']:.4f} |")
    lines += ["",
              "Every topology is a control-plane deployment carrying its "
              "`TopologySpec` in `environment[\"topology\"]`; the shared "
              "`MongoAgent` builds each through `build_topology` -- the jobs "
              "contain no topology parameters at all.  Chunk migrations the "
              "balancer performs are charged to the inserts (and load phase) "
              "that triggered them, so sharded numbers include their own "
              "maintenance."]
    return lines


def check_comparison(rows: dict[str, dict[str, Any]]) -> list[str]:
    """The E12 claims, as hard checks shared by pytest and smoke mode."""
    failures: list[str] = []
    for name, row in rows.items():
        if row["jobs_failed"] or not row["jobs_finished"]:
            failures.append(f"{name}: jobs failed through the control plane")
        if row["reported_kind"] != row["declared_kind"]:
            failures.append(
                f"{name}: reported topology {row['reported_kind']!r} != "
                f"declared {row['declared_kind']!r}")
    counts = {row["documents"] for row in rows.values()}
    if len(counts) != 1:
        failures.append(f"document counts diverged across topologies: {counts}")
    if not rows["sharded"]["throughput"] > rows["standalone"]["throughput"]:
        failures.append("sharded cluster should out-throughput standalone "
                        "on mmapv1's collection-level lock")
    if not rows["replica-set"]["latency_avg_ms"] > rows["standalone"]["latency_avg_ms"]:
        failures.append("w=majority replication should cost average latency")
    if rows["sharded"]["migrations"] <= 0:
        failures.append("the range-sharded load should trigger chunk migrations")
    elif rows["sharded"]["migration_seconds"] <= 0:
        failures.append("chunk migrations happened but were not charged")
    return failures


# -- pytest harness -------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - standalone --smoke run without pytest
    pytest = None


if pytest is not None:

    @pytest.fixture(scope="module")
    def topology_report(report_writer):
        lines = build_report_lines()
        report_writer("E12_topologies",
                      "Deployment topologies: one workload across every "
                      "cluster shape, through the control plane",
                      lines)
        return lines

    class TestTopologyComparisonShape:
        def test_all_topologies_evaluate_through_the_control_plane(
                self, topology_report):
            rows = run_comparison(SMOKE_PARAMETERS)
            assert check_comparison(rows) == []

        def test_report_covers_every_topology(self, topology_report):
            body = "\n".join(topology_report)
            for name in TOPOLOGY_COMPARISON:
                assert name in body

    @pytest.mark.benchmark(group="E12-topologies")
    def test_benchmark_topology_comparison(benchmark):
        """Wall-clock cost of the four-topology control-plane evaluation."""
        rows = benchmark.pedantic(run_comparison, args=(SMOKE_PARAMETERS,),
                                  rounds=1, iterations=1)
        benchmark.extra_info.update({
            name: f"{row['throughput']:,.0f} ops/s" for name, row in rows.items()
        })
        assert check_comparison(rows) == []


# -- standalone / CI smoke mode ---------------------------------------------------


def smoke() -> int:
    """A fast subset with hard assertions; non-zero exit on regression."""
    rows = run_comparison(SMOKE_PARAMETERS)
    for name, row in rows.items():
        print(f"{name:>18}: {row['reported_kind']:<19} "
              f"{row['throughput']:>10,.0f} ops/s  "
              f"avg {row['latency_avg_ms']:.4f} ms  "
              f"documents {row['documents']:g}  "
              f"migrations {row['migrations']:g} "
              f"({row['migration_seconds']:.4f} s charged)")
    failures = check_comparison(rows)
    for failure in failures:
        print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
    print("smoke ok" if not failures else "smoke FAILED")
    return 1 if failures else 0


def main(argv: list[str]) -> int:
    if "--smoke" in argv:
        return smoke()
    lines = build_report_lines()
    print("\n".join(lines))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
