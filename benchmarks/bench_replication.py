"""E11 -- replication: write-concern durability, read staleness, recovery.

Three comparisons, all opened by the replication subsystem:

* **Write concern: latency vs durability.**  The same insert stream with the
  primary killed mid-run.  ``w=1`` acknowledges after the primary applies --
  fastest, but the unreplicated tail (bounded by the replication lag) dies
  with the primary.  ``w=majority`` pays the replication round-trip on every
  write and loses *nothing*: the elected successor holds every acknowledged
  write.
* **Read preference: throughput vs staleness.**  ``primary`` reads are
  consistent; ``secondary``/``nearest`` reads spread load over the members
  (higher modelled throughput at thread counts past one member's
  concurrency) but observe the replication lag as staleness.
* **Recovery after a primary kill.**  A YCSB-style workload with the primary
  crashed halfway: the next operation detects the failure, the majority
  elects the freshest secondary, the workload finishes -- with zero
  acknowledged-write loss at ``w=majority``.

Run standalone for the CI smoke check::

    PYTHONPATH=src python benchmarks/bench_replication.py --smoke
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Any

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.docstore.client import DocumentClient  # noqa: E402
from repro.docstore.replication import FailureInjector, ReplicaSet  # noqa: E402
from repro.util.stats import mean  # noqa: E402
from repro.workloads.runner import DocumentBenchmark, WorkloadSpec  # noqa: E402
from repro.workloads.ycsb import OperationMix  # noqa: E402

MEMBERS = 3
LAG = 4
WRITE_CONCERNS: list[int | str] = [1, 2, "majority"]
READ_PREFERENCES = ["primary", "secondary", "nearest"]


def run_write_concern(write_concern: int | str, total: int = 120,
                      kill_at: int = 80) -> dict[str, Any]:
    """Insert stream with a mid-run primary kill; measure latency and loss."""
    replica_set = ReplicaSet(members=MEMBERS, write_concern=write_concern,
                             replication_lag=LAG)
    handle = DocumentClient(replica_set).collection("bench", "events")
    injector = FailureInjector(replica_set)
    acknowledged: list[str] = []
    latencies: list[float] = []
    for index in range(total):
        if index == kill_at:
            injector.kill_primary()
        result = handle.insert_one({"_id": f"event{index:05d}", "n": index})
        acknowledged.extend(result.inserted_ids)
        latencies.append(result.simulated_seconds)
    surviving = {document["_id"]
                 for document in handle.find_with_cost({}).documents}
    lost = [record_id for record_id in acknowledged
            if record_id not in surviving]
    return {
        "write_concern": write_concern,
        "ack_latency_ms": mean(latencies[:kill_at]) * 1000.0,
        "failover_latency_ms": latencies[kill_at] * 1000.0,
        "acknowledged": len(acknowledged),
        "lost": len(lost),
        "rolled_back": replica_set.rolled_back_entries,
    }


def run_read_preference(read_preference: str) -> dict[str, Any]:
    """A read-heavy workload; measure modelled throughput and staleness.

    Runs on mmapv1 deliberately: its collection-level lock serialises one
    server at 8 threads, so spreading reads over the members
    (``secondary``/``nearest``) buys real modelled throughput -- the classic
    reason to accept stale reads.  (wiredTiger's document-level locks already
    scale on a single node, so there the trade-off is dominated by network
    pings, not locking.)
    """
    spec = WorkloadSpec(record_count=300, operation_count=600, threads=8,
                        mix=OperationMix(read=0.9, update=0.1),
                        distribution="zipfian", seed=11,
                        replicas=MEMBERS, write_concern=1,
                        read_preference=read_preference, replication_lag=LAG)
    benchmark = DocumentBenchmark.for_spec(spec, "mmapv1")
    result = benchmark.execute_full()
    replication = result.engine_statistics["replication"]
    return {
        "read_preference": read_preference,
        "throughput": result.throughput_ops_per_sec,
        "p95_ms": result.latency_p95_ms,
        "staleness_mean": replication["staleness_mean"],
        "staleness_max": replication["staleness_max"],
    }


def run_recovery(write_concern: int | str = "majority") -> dict[str, Any]:
    """Kill the primary halfway through a YCSB-style run; measure recovery."""
    spec = WorkloadSpec(record_count=200, operation_count=400, threads=4,
                        mix=OperationMix(read=0.5, update=0.3, insert=0.2),
                        distribution="zipfian", seed=7,
                        replicas=MEMBERS, write_concern=write_concern,
                        replication_lag=LAG)
    benchmark = DocumentBenchmark.for_spec(spec, "wiredtiger")
    replica_set = benchmark.server
    assert isinstance(replica_set, ReplicaSet)
    injector = FailureInjector(replica_set)
    kill_at = spec.operation_count // 2

    def hook(index: int) -> None:
        if index == kill_at:
            injector.kill_primary()

    benchmark.operation_hook = hook
    result = benchmark.execute_full()
    election = replica_set.elections[0]
    return {
        "write_concern": write_concern,
        "operations": result.operations,
        "failovers": replica_set.failovers,
        "election_ms": election.simulated_seconds * 1000.0,
        "votes": f"{election.votes}/{election.member_count}",
        "rolled_back": replica_set.rolled_back_entries,
        "throughput": result.throughput_ops_per_sec,
    }


def build_report_lines() -> list[str]:
    lines = [f"## Write concern: ack latency vs durability "
             f"({MEMBERS} members, lag {LAG}, primary killed mid-run)", "",
             "| w | ack latency (ms) | failover op (ms) | acknowledged "
             "| lost | rolled back |",
             "| --- | --- | --- | --- | --- | --- |"]
    for write_concern in WRITE_CONCERNS:
        row = run_write_concern(write_concern)
        lines.append(
            f"| {row['write_concern']} | {row['ack_latency_ms']:.4f} "
            f"| {row['failover_latency_ms']:.4f} | {row['acknowledged']} "
            f"| {row['lost']} | {row['rolled_back']} |")
    lines += ["", "## Read preference: throughput vs staleness "
              f"(mmapv1, w=1, lag {LAG}, 8 threads)", "",
              "| reads | throughput (ops/s) | p95 (ms) | staleness mean "
              "| staleness max |",
              "| --- | --- | --- | --- | --- |"]
    for read_preference in READ_PREFERENCES:
        row = run_read_preference(read_preference)
        lines.append(
            f"| {row['read_preference']} | {row['throughput']:,.0f} "
            f"| {row['p95_ms']:.3f} | {row['staleness_mean']:.2f} "
            f"| {row['staleness_max']} |")
    lines += ["", "## Recovery: primary killed halfway through a workload", "",
              "| w | operations | failovers | election (ms) | votes "
              "| rolled back | throughput (ops/s) |",
              "| --- | --- | --- | --- | --- | --- | --- |"]
    for write_concern in (1, "majority"):
        row = run_recovery(write_concern)
        lines.append(
            f"| {row['write_concern']} | {row['operations']} "
            f"| {row['failovers']} | {row['election_ms']:.2f} "
            f"| {row['votes']} | {row['rolled_back']} "
            f"| {row['throughput']:,.0f} |")
    return lines


# -- pytest harness -------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - standalone --smoke run without pytest
    pytest = None


if pytest is not None:

    @pytest.fixture(scope="module")
    def replication_report(report_writer):
        lines = build_report_lines()
        report_writer("E11_replication",
                      "Replication: write-concern durability, read staleness, "
                      "failover recovery",
                      lines)
        return lines

    class TestReplicationShape:
        def test_majority_never_loses_acknowledged_writes(self, replication_report):
            row = run_write_concern("majority")
            assert row["lost"] == 0
            assert row["rolled_back"] == 0

        def test_w1_loses_the_lag_window(self, replication_report):
            row = run_write_concern(1)
            assert row["lost"] == LAG
            assert row["rolled_back"] == LAG

        def test_durability_costs_latency(self, replication_report):
            costs = {write_concern: run_write_concern(write_concern)["ack_latency_ms"]
                     for write_concern in (1, "majority")}
            assert costs["majority"] > costs[1]

        def test_secondary_reads_trade_staleness_for_throughput(
                self, replication_report):
            primary = run_read_preference("primary")
            secondary = run_read_preference("secondary")
            assert primary["staleness_mean"] == 0.0
            assert secondary["staleness_mean"] > 0.0
            assert secondary["throughput"] > primary["throughput"]

        def test_recovery_completes_with_one_election(self, replication_report):
            row = run_recovery("majority")
            assert row["operations"] == 400
            assert row["failovers"] == 1
            assert row["election_ms"] > 0
            assert row["rolled_back"] == 0

    @pytest.mark.benchmark(group="E11-replication")
    @pytest.mark.parametrize("write_concern", WRITE_CONCERNS)
    def test_benchmark_write_concern_failover(benchmark, write_concern):
        """Wall-clock cost of the insert-kill-failover scenario."""
        result = benchmark.pedantic(run_write_concern, args=(write_concern,),
                                    rounds=1, iterations=1)
        benchmark.extra_info.update({
            "write_concern": str(write_concern), "lost": result["lost"],
        })
        if write_concern == "majority":
            assert result["lost"] == 0


# -- standalone / CI smoke mode ---------------------------------------------------


def smoke() -> int:
    """A fast subset with hard assertions; non-zero exit on regression."""
    failures: list[str] = []

    majority = run_write_concern("majority")
    w1 = run_write_concern(1)
    print(f"write concern @120 inserts, primary killed at 80: "
          f"majority lost {majority['lost']} "
          f"(ack {majority['ack_latency_ms']:.4f} ms), "
          f"w=1 lost {w1['lost']} (ack {w1['ack_latency_ms']:.4f} ms)")
    if majority["lost"] != 0:
        failures.append("w=majority lost acknowledged writes")
    if w1["lost"] != LAG:
        failures.append(f"w=1 should lose exactly the lag window ({LAG})")
    if not majority["ack_latency_ms"] > w1["ack_latency_ms"]:
        failures.append("majority acks should cost more than w=1 acks")

    primary = run_read_preference("primary")
    secondary = run_read_preference("secondary")
    print(f"read preference: primary staleness {primary['staleness_mean']:.2f}, "
          f"secondary staleness {secondary['staleness_mean']:.2f} "
          f"(throughput {primary['throughput']:,.0f} vs "
          f"{secondary['throughput']:,.0f} ops/s)")
    if primary["staleness_mean"] != 0.0:
        failures.append("primary reads must never be stale")
    if not secondary["staleness_mean"] > 0.0:
        failures.append("secondary reads should observe replication lag")

    recovery = run_recovery("majority")
    print(f"recovery: {recovery['operations']} ops completed, "
          f"{recovery['failovers']} failover, election "
          f"{recovery['election_ms']:.2f} ms ({recovery['votes']} votes), "
          f"rolled back {recovery['rolled_back']}")
    if recovery["failovers"] != 1:
        failures.append("the primary kill should cause exactly one election")
    if recovery["rolled_back"] != 0:
        failures.append("the majority workload rolled back acknowledged writes")

    for failure in failures:
        print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
    print("smoke ok" if not failures else "smoke FAILED")
    return 1 if failures else 0


def main(argv: list[str]) -> int:
    if "--smoke" in argv:
        return smoke()
    lines = build_report_lines()
    print("\n".join(lines))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
