"""E17 -- parallel scatter-gather: router fan-out wall-clock vs shard count.

The cost model always priced multi-shard fan-out as parallel
(``combine_shard_costs(parallel=True)`` takes the max over shards), but
until the per-shard :class:`~repro.docstore.sharding.executor.ShardExecutor`
existed every fan-out ran a serial shard loop, so under
``real_service_scale`` a 4-shard scatter paid 4x the wall-clock it
claimed.  E17 measures the gap closing: the same workloads run against a
``parallel_fanout=True`` cluster and the serial-loop baseline
(``parallel_fanout=False``), and the speedup at S shards should approach S
-- fan-out wall-clock equals the slowest shard, not the sum.

Workloads per shard count (total documents fixed, so per-shard work
shrinks as shards grow and the *serial* wall stays roughly flat):

* ``scatter_reads``     -- non-key-predicate finds (full scatter scan),
* ``group_pushdown``    -- ``$group`` aggregate (partial-group scatter),
* ``broadcast_writes``  -- non-key ``update_many`` (broadcast write).

Every run also differentially checks sharded == standalone document-for-
document in both modes, so the parallelism can never buy wrong answers.

CI smoke check (fails when 4-shard scatter reads do not reach 1.8x the
serial baseline)::

    PYTHONPATH=src python benchmarks/bench_parallel_router.py --smoke
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path
from typing import Any, Callable

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.docstore.client import CollectionHandle, DocumentClient  # noqa: E402
from repro.docstore.cost import CostParameters  # noqa: E402
from repro.docstore.server import DocumentServer  # noqa: E402
from repro.docstore.sharding import ShardedCluster  # noqa: E402

LOAD_BATCH = 500

# Same scale as E14: simulated service times become real GIL-releasing
# sleeps, so fan-out dispatch really overlaps per-shard service time.
REAL_SERVICE_SCALE = 8.0

SHARD_LADDER = [1, 2, 4, 8]

# Floors at 4 shards vs the serial baseline: the full-run acceptance bar
# for scatter reads and $group pushdown, and the conservative CI floor
# (shared runners schedule threads noisily).
FULL_SPEEDUP_TARGET = 2.5
SMOKE_SPEEDUP_FLOOR = 1.8

GROUP_PIPELINE = [
    {"$group": {"_id": "$category", "total": {"$sum": "$n"},
                "peak": {"$max": "$n"}}},
    {"$sort": {"_id": 1}},
]


def build_deployment(shards: int, parallel: bool, records: int,
                     seed: int = 42):
    """A loaded cluster (or standalone reference for shards == 0)."""
    costs = CostParameters(real_service_scale=REAL_SERVICE_SCALE)
    if shards == 0:
        server: DocumentServer | ShardedCluster = DocumentServer(
            cost_parameters=costs)
    else:
        # split_threshold above the load keeps chunk migrations out of the
        # measured phases; the fan-out dispatch is the only variable.
        server = ShardedCluster(shards=shards, split_threshold=1_000_000,
                                parallel_fanout=parallel,
                                cost_parameters=costs)
    handle = DocumentClient(server).collection("benchmark", "usertable")
    rng = random.Random(seed)
    for start in range(0, records, LOAD_BATCH):
        handle.insert_many([
            {"_id": f"user{index:06d}", "n": rng.randrange(10_000),
             "category": index % 16, "payload": "x" * 64}
            for index in range(start, min(start + LOAD_BATCH, records))
        ])
    return server, handle


def _timed(operations: int, op: Callable[[int], None]) -> dict[str, float]:
    started = time.perf_counter()
    for index in range(operations):
        op(index)
    seconds = time.perf_counter() - started
    return {
        "operations": operations,
        "wall_seconds": round(seconds, 6),
        "ops_per_sec": round(operations / seconds, 1) if seconds else 0.0,
    }


def run_workloads(handle: CollectionHandle, operations: int,
                  records: int) -> dict[str, dict[str, float]]:
    """The three fan-out phases against one deployment."""
    read_query = {"n": {"$gte": 0}}  # non-key predicate: full scatter

    def scatter_read(__: int) -> None:
        result = handle.find_with_cost(read_query)
        assert result.matched_count == records

    def group_pushdown(__: int) -> None:
        rows = handle.aggregate(GROUP_PIPELINE)
        assert len(rows) == min(16, records)

    def broadcast_write(index: int) -> None:
        result = handle.update_many({"category": {"$gte": 0}},
                                    {"$inc": {"touched": 1}})
        assert result.matched_count == records

    return {
        "scatter_reads": _timed(operations, scatter_read),
        "group_pushdown": _timed(operations, group_pushdown),
        "broadcast_writes": _timed(max(1, operations // 2), broadcast_write),
    }


def check_equivalence(records: int, shards: int) -> dict[str, Any]:
    """Sharded == standalone, document for document, in both fan-out modes.

    Runs the benchmark's own query shapes plus a write round and compares
    full result sets against a standalone server with identical data.
    """
    def fingerprint(handle: CollectionHandle) -> dict[str, Any]:
        handle.update_many({"category": {"$lt": 8}}, {"$inc": {"n": 1}})
        documents = sorted(handle.find_with_cost({"n": {"$gte": 0}}).documents,
                           key=lambda document: document["_id"])
        return {
            "documents": [(doc["_id"], doc["n"], doc["category"])
                          for doc in documents],
            "group_rows": handle.aggregate(GROUP_PIPELINE),
            "distinct": handle.distinct("category", {"n": {"$gte": 100}}),
            "count": handle.count_documents({"category": {"$gte": 4}}),
        }

    __, standalone = build_deployment(0, True, records)
    reference = fingerprint(standalone)
    for parallel in (True, False):
        __, handle = build_deployment(shards, parallel, records)
        candidate = fingerprint(handle)
        assert candidate == reference, (
            f"sharded != standalone with parallel_fanout={parallel}")
    return {"checked_shards": shards, "modes": ["parallel", "serial"],
            "documents": records, "passed": True}


def run(records: int, operations: int,
        shard_ladder: list[int]) -> dict[str, Any]:
    workloads: dict[str, dict[str, Any]] = {
        "scatter_reads": {}, "group_pushdown": {}, "broadcast_writes": {}}
    for shards in shard_ladder:
        per_mode: dict[str, dict[str, dict[str, float]]] = {}
        for mode, parallel in (("parallel", True), ("serial", False)):
            __, handle = build_deployment(shards, parallel, records)
            per_mode[mode] = run_workloads(handle, operations, records)
        for name, slot in workloads.items():
            parallel_phase = per_mode["parallel"][name]
            serial_phase = per_mode["serial"][name]
            speedup = (serial_phase["wall_seconds"]
                       / parallel_phase["wall_seconds"]
                       if parallel_phase["wall_seconds"] else 0.0)
            slot[str(shards)] = {
                "parallel": parallel_phase,
                "serial": serial_phase,
                "speedup": round(speedup, 2),
            }
        summary = ", ".join(
            f"{name}={workloads[name][str(shards)]['speedup']:.2f}x"
            for name in workloads)
        print(f"[{shards} shard{'s' if shards > 1 else ' '}] "
              f"parallel-vs-serial: {summary}")
    return {
        "benchmark": "E17_parallel_router",
        "records": records,
        "operations": operations,
        "real_service_scale": REAL_SERVICE_SCALE,
        "shard_ladder": shard_ladder,
        "speedup_target": FULL_SPEEDUP_TARGET,
        "workloads": workloads,
        "equivalence": check_equivalence(records, max(shard_ladder)),
    }


def speedup_at(report: dict[str, Any], workload: str, shards: int) -> float:
    return report["workloads"][workload][str(shards)]["speedup"]


def check_floor(report: dict[str, Any], floor: float,
                workload_names: list[str]) -> list[str]:
    """The scaling guard: 4-shard fan-outs must beat the serial loop."""
    failures = []
    for name in workload_names:
        achieved = speedup_at(report, name, 4)
        if achieved < floor:
            failures.append(
                f"{name} at 4 shards reached only {achieved:.2f}x the "
                f"serial-fanout baseline (floor {floor:.1f}x)")
    return failures


def write_markdown(report: dict[str, Any], path: Path) -> None:
    lines = [
        "# E17 -- parallel scatter-gather wall-clock",
        "",
        f"Shard ladder {report['shard_ladder']}, {report['records']} "
        f"documents total, {report['operations']} fan-outs per phase, "
        f"real_service_scale={report['real_service_scale']}.",
        "",
        "Each cell compares the per-shard executor pool "
        "(`parallel_fanout=True`) against the serial shard loop "
        "(`parallel_fanout=False`) on identical data; the speedup is the "
        "serial wall-clock over the parallel wall-clock.  Both modes "
        "passed the sharded == standalone differential check.",
        "",
        "| shards | scatter reads | $group pushdown | broadcast writes |",
        "|--:|--:|--:|--:|",
    ]
    for shards in report["shard_ladder"]:
        cells = " | ".join(
            f"{speedup_at(report, name, shards):.2f}x"
            for name in ("scatter_reads", "group_pushdown",
                         "broadcast_writes"))
        lines.append(f"| {shards} | {cells} |")
    reads = speedup_at(report, "scatter_reads", 4)
    group = speedup_at(report, "group_pushdown", 4)
    verdict = ("meets" if min(reads, group) >= report["speedup_target"]
               else "misses")
    lines += [
        "",
        f"4-shard scatter reads ran **{reads:.2f}x** and $group pushdown "
        f"**{group:.2f}x** faster than the serial baseline ({verdict} the "
        f">= {report['speedup_target']:.1f}x acceptance bar).",
        "",
    ]
    path.write_text("\n".join(lines))


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small run with the conservative CI floor")
    parser.add_argument("--records", type=int, default=None,
                        help="documents loaded per deployment")
    parser.add_argument("--operations", type=int, default=None,
                        help="fan-out operations per phase")
    parser.add_argument("--json", type=Path,
                        default=(Path(__file__).parent / "results"
                                 / "E17_parallel_router.json"),
                        help="where to write the machine-readable report")
    arguments = parser.parse_args()

    smoke = arguments.smoke
    records = arguments.records or (600 if smoke else 1_600)
    operations = arguments.operations or (12 if smoke else 30)
    shard_ladder = [1, 4] if smoke else SHARD_LADDER

    report = run(records, operations, shard_ladder)
    report["mode"] = "smoke" if smoke else "full"

    arguments.json.parent.mkdir(parents=True, exist_ok=True)
    arguments.json.write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {arguments.json}")
    if not smoke:
        markdown = arguments.json.with_suffix(".md")
        write_markdown(report, markdown)
        print(f"wrote {markdown}")

    if smoke:
        failures = check_floor(report, SMOKE_SPEEDUP_FLOOR,
                               ["scatter_reads"])
    else:
        failures = check_floor(report, FULL_SPEEDUP_TARGET,
                               ["scatter_reads", "group_pushdown"])
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    if smoke:
        print(f"smoke ok: 4-shard scatter reads ran "
              f"{speedup_at(report, 'scatter_reads', 4):.2f}x the serial "
              f"baseline (floor {SMOKE_SPEEDUP_FLOOR}x)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
