"""E10 -- the query planner: index-range scans and range-targeted routing.

Two comparisons, both opened by the planner refactor:

* **Single server**: the same range query on an indexed vs an unindexed
  collection.  With the ordered secondary index the planner picks
  ``INDEX_RANGE`` and examines only the overlapping index window; without it
  every document is scanned.  The simulated-cost gap widens with the
  document count.
* **Sharded cluster**: the same range query on a range-sharded vs a
  hash-sharded cluster.  The router's shared interval analysis targets only
  the shards owning overlapping chunks on the range-sharded key; the hashed
  key must scatter to every shard.

Run standalone for the CI smoke check::

    PYTHONPATH=src python benchmarks/bench_query_planner.py --smoke
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import Any

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.docstore.collection import Collection  # noqa: E402
from repro.docstore.planner import FULL_SCAN, INDEX_RANGE  # noqa: E402
from repro.docstore.sharding.cluster import ShardedCluster  # noqa: E402
from repro.docstore.wiredtiger import WiredTigerEngine  # noqa: E402

DOCUMENT_COUNTS = [250, 1000, 4000]
SHARDS = 4
WINDOW = 50  # documents matched by the range query (fixed, so the gap grows with N)


def _documents(count: int) -> list[dict[str, Any]]:
    return [
        {"_id": f"user{index:06d}", "counter": index,
         "category": f"cat{index % 10}", "payload": "x" * 64}
        for index in range(count)
    ]


def _range_query(count: int) -> dict[str, Any]:
    low = count // 2
    return {"counter": {"$gte": low, "$lt": low + min(WINDOW, count)}}


def run_single_server(count: int) -> dict[str, Any]:
    """Full-scan vs index-range execution of one range query."""
    indexed = Collection("users", WiredTigerEngine())
    unindexed = Collection("users", WiredTigerEngine())
    documents = _documents(count)
    indexed.insert_many(documents)
    unindexed.insert_many(documents)
    indexed.create_index("counter")

    query = _range_query(count)
    indexed_plan = indexed.explain(query)["winning_plan"]
    unindexed_plan = unindexed.explain(query)["winning_plan"]
    indexed_cost = indexed.find_with_cost(query).simulated_seconds
    scan_cost = unindexed.find_with_cost(query).simulated_seconds
    return {
        "documents": count,
        "indexed_path": indexed_plan["access_path"],
        "indexed_examined": indexed_plan["candidates_examined"],
        "unindexed_path": unindexed_plan["access_path"],
        "indexed_cost": indexed_cost,
        "scan_cost": scan_cost,
        "speedup": scan_cost / indexed_cost if indexed_cost else float("inf"),
    }


def run_sharded(count: int, strategy: str) -> dict[str, Any]:
    """One range query on the shard key against a 4-shard cluster."""
    cluster = ShardedCluster(shards=SHARDS, strategy=strategy, split_threshold=32,
                             auto_maintenance=False)
    handle = cluster.database("bench").collection("users")
    handle.insert_many([{"_id": f"user{index:06d}", "counter": index}
                        for index in range(count)])
    cluster.maintain("bench", "users")

    start = f"user{count - min(WINDOW, count):06d}"
    query = {"_id": {"$gte": start}}
    # Snapshot the routing counters after loading: every insert_one counts as
    # a targeted operation, so only the delta attributes to the range query.
    targeted_before = cluster.router.targeted_operations
    scatter_before = cluster.router.scatter_operations
    result = handle.find_with_cost(query)
    return {
        "documents": count,
        "strategy": strategy,
        "shards_contacted": len(result.shard_costs),
        "matched": len(result.documents),
        "cost": result.simulated_seconds,
        "targeted": cluster.router.targeted_operations - targeted_before,
        "scatter": cluster.router.scatter_operations - scatter_before,
    }


def build_report_lines() -> list[str]:
    lines = ["## Single server: full scan vs INDEX_RANGE", "",
             "| documents | indexed path | examined | indexed cost (s) "
             "| full-scan cost (s) | speedup |",
             "| --- | --- | --- | --- | --- | --- |"]
    for count in DOCUMENT_COUNTS:
        row = run_single_server(count)
        lines.append(
            f"| {row['documents']} | {row['indexed_path']} "
            f"| {row['indexed_examined']} | {row['indexed_cost']:.6f} "
            f"| {row['scan_cost']:.6f} | {row['speedup']:.1f}x |")
    lines += ["", "## Sharded: scatter (hash) vs range-targeted (range)", "",
              "| documents | strategy | shards contacted | matched | cost (s) |",
              "| --- | --- | --- | --- | --- |"]
    for count in DOCUMENT_COUNTS:
        for strategy in ("hash", "range"):
            row = run_sharded(count, strategy)
            lines.append(
                f"| {row['documents']} | {row['strategy']} "
                f"| {row['shards_contacted']}/{SHARDS} | {row['matched']} "
                f"| {row['cost']:.6f} |")
    return lines


# -- pytest harness -------------------------------------------------------------

try:
    import pytest
except ImportError:  # pragma: no cover - standalone --smoke run without pytest
    pytest = None


if pytest is not None:

    @pytest.fixture(scope="module")
    def planner_report(report_writer):
        lines = build_report_lines()
        report_writer("E10_query_planner",
                      "Query planner: index-range scans and range-targeted routing",
                      lines)
        return lines

    class TestPlannerShape:
        def test_index_range_beats_full_scan_at_scale(self, planner_report):
            for count in (1000, 4000):
                row = run_single_server(count)
                assert row["indexed_path"] == INDEX_RANGE
                assert row["unindexed_path"] == FULL_SCAN
                assert row["indexed_cost"] < row["scan_cost"]

        def test_speedup_grows_with_document_count(self, planner_report):
            speedups = [run_single_server(count)["speedup"]
                        for count in DOCUMENT_COUNTS]
            assert speedups[-1] > speedups[0]

        def test_range_strategy_targets_a_shard_subset(self, planner_report):
            hashed = run_sharded(1000, "hash")
            ranged = run_sharded(1000, "range")
            assert hashed["shards_contacted"] == SHARDS
            assert ranged["shards_contacted"] < SHARDS
            assert hashed["matched"] == ranged["matched"]
            assert ranged["targeted"] >= 1 and hashed["scatter"] >= 1

    @pytest.mark.benchmark(group="E10-planner")
    @pytest.mark.parametrize("count", DOCUMENT_COUNTS)
    def test_benchmark_planner_range_query(benchmark, count):
        """Wall-clock cost of loading + one planned range query."""
        result = benchmark.pedantic(run_single_server, args=(count,),
                                    rounds=1, iterations=1)
        benchmark.extra_info.update({
            "documents": count, "speedup": result["speedup"],
        })
        assert result["indexed_cost"] < result["scan_cost"]


# -- standalone / CI smoke mode ---------------------------------------------------


def smoke() -> int:
    """A fast subset with hard assertions; non-zero exit on regression."""
    failures: list[str] = []

    single = run_single_server(1000)
    print(f"single server @1000 docs: {single['indexed_path']} examined "
          f"{single['indexed_examined']}, cost {single['indexed_cost']:.6f}s "
          f"vs full scan {single['scan_cost']:.6f}s "
          f"({single['speedup']:.1f}x)")
    if single["indexed_path"] != INDEX_RANGE:
        failures.append("indexed range query did not use INDEX_RANGE")
    if not single["indexed_cost"] < single["scan_cost"]:
        failures.append("index-range execution not cheaper than full scan")

    hashed = run_sharded(1000, "hash")
    ranged = run_sharded(1000, "range")
    print(f"sharded @1000 docs: hash contacted {hashed['shards_contacted']}/"
          f"{SHARDS} shards, range contacted {ranged['shards_contacted']}/"
          f"{SHARDS} (matched {ranged['matched']} both)")
    if ranged["shards_contacted"] >= SHARDS:
        failures.append("range-sharded query did not target a shard subset")
    if hashed["matched"] != ranged["matched"]:
        failures.append("hash and range strategies disagree on matches")
    if ranged["targeted"] < 1:
        failures.append("range query was not counted as targeted")

    for failure in failures:
        print(f"SMOKE FAILURE: {failure}", file=sys.stderr)
    print("smoke ok" if not failures else "smoke FAILED")
    return 1 if failures else 0


def main(argv: list[str]) -> int:
    if "--smoke" in argv:
        return smoke()
    lines = build_report_lines()
    print("\n".join(lines))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
