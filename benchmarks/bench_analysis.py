"""E6 -- analysis pipeline: aggregation and diagram generation (requirement vi).

Measures metric aggregation, pivoting and diagram rendering over result sets
of increasing size (the work Chronos Control does when the result analysis
page of Fig. 3d is opened).
"""

from __future__ import annotations

import random

import pytest

from repro.analysis.aggregate import ResultTable, aggregate_metric, pivot
from repro.analysis.compare import compare_groups
from repro.analysis.diagrams import build_diagram, diagram_from_spec
from repro.analysis.metrics import summarize

RESULT_SET_SIZES = [100, 1000, 5000]


def synthetic_results(count: int) -> list[dict]:
    rng = random.Random(42)
    engines = ["wiredtiger", "mmapv1"]
    return [
        {
            "parameters": {"storage_engine": engines[index % 2],
                           "threads": 2 ** (index % 5)},
            "throughput_ops_per_sec": rng.uniform(1e3, 2e5),
            "latency_p95_ms": rng.uniform(0.05, 5.0),
        }
        for index in range(count)
    ]


@pytest.fixture(scope="module", autouse=True)
def regenerate_table(report_writer):
    lines = ["| result set size | groups | p95 of throughput samples |",
             "| --- | --- | --- |"]
    for size in RESULT_SET_SIZES:
        results = synthetic_results(size)
        summary = summarize([r["throughput_ops_per_sec"] for r in results])
        groups = pivot(results, "parameters.threads", "throughput_ops_per_sec",
                       "parameters.storage_engine")
        lines.append(f"| {size} | {len(groups)} | {summary.p95:,.0f} |")
    report_writer("E6_analysis", "Analysis pipeline over growing result sets", lines)


@pytest.mark.benchmark(group="E6-aggregation")
@pytest.mark.parametrize("size", RESULT_SET_SIZES)
def test_benchmark_aggregation(benchmark, size):
    results = synthetic_results(size)

    def aggregate():
        table = ResultTable.from_results(results, [
            "parameters.storage_engine", "parameters.threads",
            "throughput_ops_per_sec", "latency_p95_ms"])
        aggregate_metric(results, "throughput_ops_per_sec")
        compare_groups(results, "parameters.storage_engine", "throughput_ops_per_sec")
        return table

    table = benchmark(aggregate)
    assert len(table) == size


@pytest.mark.benchmark(group="E6-diagrams")
@pytest.mark.parametrize("kind", ["bar", "line", "pie"])
def test_benchmark_diagram_rendering(benchmark, kind):
    results = synthetic_results(500)
    spec = {"kind": kind, "title": f"{kind} diagram",
            "x_field": "parameters.threads", "y_field": "throughput_ops_per_sec",
            "group_field": "parameters.storage_engine"}

    def render():
        diagram = diagram_from_spec(spec, results)
        return diagram.render_ascii(), diagram.render_svg()

    ascii_art, svg = benchmark(render)
    assert ascii_art and svg.startswith("<svg")


@pytest.mark.benchmark(group="E6-diagrams")
def test_benchmark_markdown_table(benchmark):
    results = synthetic_results(1000)
    table = ResultTable.from_results(results, [
        "parameters.storage_engine", "throughput_ops_per_sec"])
    markdown = benchmark(table.to_markdown)
    assert markdown.count("\n") > 1000


@pytest.mark.benchmark(group="E6-diagrams")
def test_benchmark_large_series_line_diagram(benchmark):
    diagram = build_diagram("line", "big series")
    diagram.add_series("s", [(index, float(index % 97)) for index in range(2000)])
    svg = benchmark(diagram.render_svg)
    assert "<line" in svg
