"""E1 -- the paper's demo (Fig. 3d): wiredTiger vs mmapv1 across thread counts.

Regenerates the throughput / latency series of the comparative storage-engine
evaluation and benchmarks the cost of one complete benchmark job per engine.

Expected shape (documented in EXPERIMENTS.md): wiredTiger throughput grows
close to linearly with client threads, mmapv1 plateaus because of its
collection-level write lock; mmapv1 is competitive at a single thread; the
wiredTiger on-disk footprint is considerably smaller due to block compression.
"""

from __future__ import annotations

import pytest

from repro.analysis.aggregate import ResultTable, pivot
from repro.analysis.compare import compare_groups, speedup_table
from repro.demo import prepare_demo, run_demo
from repro.docstore.server import DocumentServer
from repro.workloads.runner import DocumentBenchmark, WorkloadSpec
from repro.workloads.ycsb import OperationMix

THREAD_SWEEP = [1, 2, 4, 8, 16]
DEMO_PARAMETERS = {
    "storage_engine": ["wiredtiger", "mmapv1"],
    "threads": THREAD_SWEEP,
    "record_count": 200,
    "operation_count": 400,
    "query_mix": "50:50",
    "distribution": "zipfian",
}


@pytest.fixture(scope="module")
def demo_results(report_writer):
    """Run the full Chronos-driven demo once and persist the regenerated table."""
    setup = run_demo(prepare_demo(parameters=DEMO_PARAMETERS))
    results = setup.results
    table = ResultTable.from_results(results, [
        "parameters.storage_engine", "parameters.threads",
        "throughput_ops_per_sec", "latency_p95_ms", "storage_bytes",
    ]).sort_by("parameters.threads")
    comparison = compare_groups(results, "parameters.storage_engine",
                                "throughput_ops_per_sec")
    speedups = speedup_table(results, "parameters.threads", "throughput_ops_per_sec",
                             "parameters.storage_engine", baseline_group="mmapv1")
    lines = [table.to_markdown(), "",
             f"Winner: **{comparison['winner']}** "
             f"({comparison['factor']:.2f}x over {comparison['runner_up']})", "",
             "| threads | wiredtiger / mmapv1 |", "| --- | --- |"]
    lines += [f"| {row['parameters.threads']} | {row['wiredtiger_speedup']:.2f}x |"
              for row in speedups]
    report_writer("E1_storage_engines", "wiredTiger vs mmapv1 (Fig. 3d)", lines)
    return results


def _single_job(engine: str, threads: int):
    spec = WorkloadSpec(record_count=200, operation_count=400, threads=threads,
                        mix=OperationMix(read=0.5, update=0.5), seed=7)
    return DocumentBenchmark(DocumentServer(engine), spec).execute_full()


class TestComparativeShape:
    """Assertions that the regenerated series has the demo's shape."""

    def test_wiredtiger_scales_with_threads(self, demo_results):
        series = dict(pivot(demo_results, "parameters.threads",
                            "throughput_ops_per_sec",
                            "parameters.storage_engine")["wiredtiger"])
        assert series[16] > series[1] * 4

    def test_mmapv1_plateaus(self, demo_results):
        series = dict(pivot(demo_results, "parameters.threads",
                            "throughput_ops_per_sec",
                            "parameters.storage_engine")["mmapv1"])
        assert series[16] < series[1] * 3

    def test_wiredtiger_wins_at_high_concurrency(self, demo_results):
        series = pivot(demo_results, "parameters.threads", "throughput_ops_per_sec",
                       "parameters.storage_engine")
        assert dict(series["wiredtiger"])[16] > dict(series["mmapv1"])[16] * 2

    def test_engines_comparable_at_one_thread(self, demo_results):
        series = pivot(demo_results, "parameters.threads", "throughput_ops_per_sec",
                       "parameters.storage_engine")
        ratio = dict(series["wiredtiger"])[1] / dict(series["mmapv1"])[1]
        assert 0.5 < ratio < 2.5

    def test_compressed_footprint_smaller(self, demo_results):
        wired = [r["storage_bytes"] for r in demo_results
                 if r["parameters"]["storage_engine"] == "wiredtiger"]
        mmap = [r["storage_bytes"] for r in demo_results
                if r["parameters"]["storage_engine"] == "mmapv1"]
        assert max(wired) < min(mmap)


@pytest.mark.benchmark(group="E1-single-job")
@pytest.mark.parametrize("engine", ["wiredtiger", "mmapv1"])
def test_benchmark_single_job(benchmark, engine):
    """Wall-clock cost of executing one demo job (load + warm-up + run)."""
    result = benchmark.pedantic(_single_job, args=(engine, 8), rounds=3, iterations=1)
    benchmark.extra_info["throughput_ops_per_sec"] = result.throughput_ops_per_sec
    benchmark.extra_info["engine"] = engine
    assert result.operations == 400


@pytest.mark.benchmark(group="E1-full-evaluation")
def test_benchmark_full_demo_evaluation(benchmark):
    """Wall-clock cost of the complete Chronos-orchestrated demo evaluation."""
    small = dict(DEMO_PARAMETERS, threads=[1, 4], record_count=100, operation_count=200)

    def run():
        setup = run_demo(prepare_demo(parameters=small))
        return setup.report.jobs_finished

    finished = benchmark.pedantic(run, rounds=3, iterations=1)
    assert finished == 4
