"""E7 -- YCSB core workloads A-F on both storage engines.

Generalises the demo beyond the read/update mix: for every core workload the
harness reports both engines' throughput, checking the expected shape
(read-only workloads keep the engines close; update-heavy and RMW workloads
favour wiredTiger, increasingly so at higher thread counts).
"""

from __future__ import annotations

import pytest

from repro.docstore.server import DocumentServer
from repro.workloads.runner import DocumentBenchmark, WorkloadSpec
from repro.workloads.ycsb import CORE_WORKLOADS

THREADS = 8
WORKLOADS = list(CORE_WORKLOADS)


def run_workload(name: str, engine: str, threads: int = THREADS):
    workload = CORE_WORKLOADS[name]
    spec = WorkloadSpec(record_count=150, operation_count=300, threads=threads,
                        mix=workload.mix, distribution=workload.distribution, seed=5)
    return DocumentBenchmark(DocumentServer(engine), spec).execute_full()


@pytest.fixture(scope="module")
def workload_matrix(report_writer):
    matrix = {}
    for name in WORKLOADS:
        matrix[name] = {
            "wiredtiger": run_workload(name, "wiredtiger"),
            "mmapv1": run_workload(name, "mmapv1"),
        }
    lines = ["| workload | description | wiredTiger (ops/s) | mmapv1 (ops/s) | ratio |",
             "| --- | --- | --- | --- | --- |"]
    for name in WORKLOADS:
        wired = matrix[name]["wiredtiger"].throughput_ops_per_sec
        mmap = matrix[name]["mmapv1"].throughput_ops_per_sec
        lines.append(f"| {name} | {CORE_WORKLOADS[name].description} | "
                     f"{wired:,.0f} | {mmap:,.0f} | {wired / mmap:.2f}x |")
    report_writer("E7_ycsb_workloads", f"YCSB A-F at {THREADS} threads", lines)
    return matrix


class TestWorkloadShape:
    def test_update_heavy_workload_a_favours_wiredtiger(self, workload_matrix):
        wired = workload_matrix["A"]["wiredtiger"].throughput_ops_per_sec
        mmap = workload_matrix["A"]["mmapv1"].throughput_ops_per_sec
        assert wired > mmap * 2

    def test_read_only_workload_c_keeps_engines_close(self, workload_matrix):
        wired = workload_matrix["C"]["wiredtiger"].throughput_ops_per_sec
        mmap = workload_matrix["C"]["mmapv1"].throughput_ops_per_sec
        assert wired / mmap < 3.0

    def test_gap_grows_with_write_fraction(self, workload_matrix):
        def ratio(name):
            return (workload_matrix[name]["wiredtiger"].throughput_ops_per_sec
                    / workload_matrix[name]["mmapv1"].throughput_ops_per_sec)

        assert ratio("A") > ratio("B") > ratio("C") * 0.9

    def test_every_workload_completes_all_operations(self, workload_matrix):
        for name, engines in workload_matrix.items():
            for result in engines.values():
                assert result.operations == 300


@pytest.mark.benchmark(group="E7-ycsb")
@pytest.mark.parametrize("workload", WORKLOADS)
@pytest.mark.parametrize("engine", ["wiredtiger", "mmapv1"])
def test_benchmark_ycsb_workload(benchmark, workload, engine):
    """Wall-clock cost of running one YCSB workload against one engine."""
    result = benchmark.pedantic(run_workload, args=(workload, engine),
                                rounds=2, iterations=1)
    benchmark.extra_info.update({
        "workload": workload,
        "engine": engine,
        "throughput_ops_per_sec": result.throughput_ops_per_sec,
    })
    assert result.operations == 300
