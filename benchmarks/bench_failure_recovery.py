"""E4 -- automated failure handling and recovery (requirement iii).

Injects agent failures at increasing rates and measures (a) that every job
still completes thanks to automatic re-scheduling, and (b) the overhead the
retries add compared to a failure-free run.  Also benchmarks the recovery
pass that re-schedules stalled jobs after a heartbeat timeout.
"""

from __future__ import annotations

import pytest

from repro.agent.fleet import AgentFleet
from repro.agents.testing import FlakyAgent, SleepAgent, register_sleep_system
from repro.core.control import ChronosControl
from repro.core.enums import JobStatus
from repro.util.clock import SimulatedClock

JOB_COUNT = 12
FAILURE_RATES = [0.0, 0.2, 0.4]


def run_with_failure_rate(failure_rate: float, max_attempts: int = 6) -> dict:
    clock = SimulatedClock()
    control = ChronosControl(clock=clock)
    admin = control.users.get_by_username("admin")
    system = register_sleep_system(control, owner_id=admin.id)
    deployment = control.deployments.register(system.id, "node-1")
    project = control.projects.create("failures", admin)
    experiment = control.experiments.create(project.id, system.id, "exp",
                                            parameters={"work_units": list(range(JOB_COUNT))})
    evaluation, _ = control.evaluations.create(experiment.id, max_attempts=max_attempts)
    agent = FlakyAgent(failure_rate=failure_rate, seed=17)
    fleet = AgentFleet(control, system.id, [deployment.id], lambda: agent, clock=clock)
    fleet.drive_evaluation(evaluation.id)
    counts = control.jobs.counts_by_status(evaluation.id)
    total_attempts = sum(job.attempts for job in control.evaluations.jobs(evaluation.id))
    return {
        "failure_rate": failure_rate,
        "finished": counts["finished"],
        "failed": counts["failed"],
        "attempts": total_attempts,
        "injected_failures": agent.failures_injected,
    }


@pytest.fixture(scope="module")
def recovery_series(report_writer):
    series = [run_with_failure_rate(rate) for rate in FAILURE_RATES]
    lines = ["| injected failure rate | jobs finished | attempts | failures injected |",
             "| --- | --- | --- | --- |"]
    for entry in series:
        lines.append(f"| {entry['failure_rate']:.0%} | {entry['finished']}/{JOB_COUNT} | "
                     f"{entry['attempts']} | {entry['injected_failures']} |")
    report_writer("E4_failure_recovery", "Recovery completeness under injected failures",
                  lines)
    return series


class TestRecoveryShape:
    def test_all_jobs_recovered_at_every_failure_rate(self, recovery_series):
        assert all(entry["finished"] == JOB_COUNT for entry in recovery_series)
        assert all(entry["failed"] == 0 for entry in recovery_series)

    def test_retry_overhead_grows_with_failure_rate(self, recovery_series):
        attempts = [entry["attempts"] for entry in recovery_series]
        assert attempts[0] == JOB_COUNT          # no retries without failures
        assert attempts[1] > attempts[0]
        assert attempts[2] >= attempts[1]

    def test_injected_failures_equal_extra_attempts(self, recovery_series):
        for entry in recovery_series:
            assert entry["attempts"] == JOB_COUNT + entry["injected_failures"]


def _stall_and_recover() -> int:
    """Claim jobs, let their heartbeats expire, run one recovery pass."""
    clock = SimulatedClock()
    control = ChronosControl(clock=clock, heartbeat_timeout=60)
    admin = control.users.get_by_username("admin")
    system = register_sleep_system(control, owner_id=admin.id)
    deployments = [control.deployments.register(system.id, f"node-{i}") for i in range(4)]
    project = control.projects.create("stalls", admin)
    experiment = control.experiments.create(project.id, system.id, "exp",
                                            parameters={"work_units": list(range(4))})
    control.evaluations.create(experiment.id)
    for deployment in deployments:
        control.claim_next_job(system.id, deployment.id)
    clock.advance(120)
    report = control.recover_stalled_jobs()
    return len(report.stalled_jobs_recovered)


@pytest.mark.benchmark(group="E4-recovery")
def test_benchmark_stall_recovery_pass(benchmark):
    """Wall-clock cost of detecting and re-scheduling stalled jobs."""
    recovered = benchmark(_stall_and_recover)
    assert recovered == 4


@pytest.mark.benchmark(group="E4-recovery")
def test_benchmark_flaky_evaluation(benchmark):
    """Wall-clock cost of a full evaluation at a 40% injected failure rate."""
    outcome = benchmark.pedantic(run_with_failure_rate, args=(0.4,), rounds=2, iterations=1)
    assert outcome["finished"] == JOB_COUNT
