"""E2 -- evaluation-space expansion and end-to-end orchestration (Fig. 3a/3b).

Measures how an experiment's parameter grid expands into jobs and how much
the Chronos Control machinery (metadata store, state machine, REST-less
service calls) costs per job, and regenerates the "grid size -> number of
jobs" table that the evaluation overview of Fig. 3b displays.
"""

from __future__ import annotations

import pytest

from repro.agent.fleet import AgentFleet
from repro.agents.testing import SleepAgent, register_sleep_system
from repro.core.control import ChronosControl
from repro.core.parameters import (
    checkbox,
    expand_parameter_space,
    interval,
    resolve_assignments,
    value,
)
from repro.util.clock import SimulatedClock

GRID_DEFINITIONS = [checkbox("engine", ["a", "b"]), interval("threads"), value("records")]


def expansion_for(grid: dict) -> list[dict]:
    assignments = resolve_assignments(GRID_DEFINITIONS, grid)
    return expand_parameter_space(assignments)


GRIDS = {
    "2 engines x 5 threads": {"engine": ["a", "b"],
                              "threads": {"start": 1, "stop": 16, "step": 2,
                                          "scale": "geometric"},
                              "records": 100},
    "2 engines x 10 threads x 3 sizes": {"engine": ["a", "b"],
                                         "threads": {"start": 1, "stop": 10, "step": 1},
                                         "records": [10, 100, 1000]},
    "1 engine x 100 threads": {"engine": "a",
                               "threads": {"start": 1, "stop": 100, "step": 1},
                               "records": 100},
}


@pytest.fixture(scope="module", autouse=True)
def regenerate_table(report_writer):
    lines = ["| parameter grid | jobs |", "| --- | --- |"]
    for name, grid in GRIDS.items():
        lines.append(f"| {name} | {len(expansion_for(grid))} |")
    report_writer("E2_evaluation_workflow", "Parameter grid expansion (Fig. 3a/3b)", lines)


def _orchestrate(job_count: int) -> int:
    """Define, schedule and execute an evaluation with ``job_count`` trivial jobs."""
    clock = SimulatedClock()
    control = ChronosControl(clock=clock)
    admin = control.users.get_by_username("admin")
    system = register_sleep_system(control, owner_id=admin.id)
    deployment = control.deployments.register(system.id, "node-1")
    project = control.projects.create("bench", admin)
    experiment = control.experiments.create(project.id, system.id, "bench",
                                            parameters={"work_units": list(range(job_count))})
    evaluation, _ = control.evaluations.create(experiment.id)
    fleet = AgentFleet(control, system.id, [deployment.id], SleepAgent, clock=clock)
    report = fleet.drive_evaluation(evaluation.id)
    return report.jobs_finished


@pytest.mark.benchmark(group="E2-expansion")
@pytest.mark.parametrize("grid_name", list(GRIDS))
def test_benchmark_parameter_expansion(benchmark, grid_name):
    """Cost of validating + expanding one experiment grid."""
    jobs = benchmark(expansion_for, GRIDS[grid_name])
    benchmark.extra_info["jobs"] = len(jobs)
    assert jobs


@pytest.mark.benchmark(group="E2-orchestration")
@pytest.mark.parametrize("job_count", [5, 20, 50])
def test_benchmark_end_to_end_orchestration(benchmark, job_count):
    """Full Chronos overhead per evaluation: create, schedule, execute, store."""
    finished = benchmark.pedantic(_orchestrate, args=(job_count,), rounds=2, iterations=1)
    benchmark.extra_info["jobs"] = job_count
    assert finished == job_count
